#include "capow/dist/comm.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <stdexcept>
#include <string>
#include <thread>

#include "capow/fault/fault.hpp"
#include "capow/telemetry/telemetry.hpp"
#include "capow/trace/counters.hpp"

namespace capow::dist {

namespace {

std::chrono::steady_clock::time_point deadline_after(double seconds) {
  return std::chrono::steady_clock::now() +
         std::chrono::duration_cast<std::chrono::steady_clock::duration>(
             std::chrono::duration<double>(seconds));
}

void sleep_ms(double ms) {
  if (ms <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point since) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

/// Restores the calling thread's telemetry rank tag on scope exit, so a
/// caller thread reused outside World::run stops stamping rank events.
struct ThreadRankScope {
#if CAPOW_TELEMETRY_ENABLED
  explicit ThreadRankScope(int rank) { telemetry::set_thread_rank(rank); }
  ~ThreadRankScope() { telemetry::set_thread_rank(-1); }
#else
  explicit ThreadRankScope(int) {}
#endif
  ThreadRankScope(const ThreadRankScope&) = delete;
  ThreadRankScope& operator=(const ThreadRankScope&) = delete;
};

}  // namespace

World::World(int ranks, const WorldOptions& options)
    : ranks_(ranks),
      options_(options),
      mailboxes_(ranks > 0 ? static_cast<std::size_t>(ranks) : 0) {
  if (ranks <= 0) throw std::invalid_argument("World: ranks must be >= 1");
  if (options_.recv_timeout_seconds <= 0.0) {
    throw std::invalid_argument("World: recv_timeout_seconds must be > 0");
  }
  if (options_.max_send_attempts < 1) {
    throw std::invalid_argument("World: max_send_attempts must be >= 1");
  }
  if (options_.retry_backoff_us <= 0.0) {
    throw std::invalid_argument("World: retry_backoff_us must be > 0");
  }
  const std::size_t n = static_cast<std::size_t>(ranks);
  exited_ = std::make_unique<std::atomic<bool>[]>(n);
  failed_ = std::make_unique<std::atomic<bool>[]>(n);
  channel_seq_ = std::make_unique<std::atomic<std::uint64_t>[]>(n * n);
  op_epoch_ = std::make_unique<std::atomic<std::uint64_t>[]>(n);
  for (std::size_t i = 0; i < n; ++i) exited_[i].store(false);
  for (std::size_t i = 0; i < n; ++i) failed_[i].store(false);
  for (std::size_t i = 0; i < n; ++i) op_epoch_[i].store(0);
  for (std::size_t i = 0; i < n * n; ++i) channel_seq_[i].store(0);
  errors_.resize(n);
  active_.resize(n);
  for (int r = 0; r < ranks; ++r) active_[static_cast<std::size_t>(r)] = r;
  if (options_.comm_stats) {
    blocks_.reserve(n);
    for (int r = 0; r < ranks; ++r) blocks_.emplace_back(ranks);
  }
}

void World::run(const std::function<void(Communicator&)>& body) {
  // A World may be reused for several collective jobs; each run starts
  // from a clean failure state with every rank active.
  reset_elastic_state();
  run_generation(body);
  // Publish stats unconditionally, *before* rethrowing: the counters
  // collected up to a failure are exactly what a poisoned-world
  // post-mortem needs.
  if (!blocks_.empty()) last_stats_ = final_generation_stats_;
  if (std::exception_ptr cause = root_cause()) {
    std::rethrow_exception(cause);
  }
}

void World::run_generation(const std::function<void(Communicator&)>& body) {
  poisoned_.store(false, std::memory_order_release);
  exited_count_.store(0, std::memory_order_release);
  failed_baseline_.store(failed_count_.load(std::memory_order_acquire),
                         std::memory_order_release);
  for (int r = 0; r < ranks_; ++r) {
    exited_[static_cast<std::size_t>(r)].store(false,
                                               std::memory_order_release);
    errors_[static_cast<std::size_t>(r)] = nullptr;
  }
  {
    std::lock_guard lock(barrier_mutex_);
    barrier_arrived_ = 0;
  }
  for (RankCommBlock& b : blocks_) b.reset(ranks_);

  const int active_count = static_cast<int>(active_.size());
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(active_count));
  for (int v = 0; v < active_count; ++v) {
    const int phys = active_[static_cast<std::size_t>(v)];
    threads.emplace_back([this, v, phys, active_count, &body] {
      ThreadRankScope rank_tag(phys);
      // Each rank is a parallel unit: claim a distinct recorder slot so
      // concurrent ranks never share slot 0's counters. Slots follow the
      // physical rank, like every other per-rank resource.
      trace::ScopedRecorderSlot recorder_slot(phys);
      Communicator comm(*this, v, phys, active_count);
      RankCommBlock* block = comm_block(phys);
      const auto started = std::chrono::steady_clock::now();
      bool failed = false;
      try {
        body(comm);
      } catch (...) {
        // Each rank files into its own slot; the join below is the
        // happens-before edge, and root_cause() picks the winner by
        // physical rank order — deterministic under concurrent
        // multi-rank failure, unlike a first-to-lock capture.
        failed = true;
        errors_[static_cast<std::size_t>(phys)] = std::current_exception();
      }
      if (block != nullptr) block->self.active_ns = elapsed_ns(started);
      mark_exited(phys, failed);
    });
  }
  for (auto& t : threads) t.join();
  if (!blocks_.empty()) final_generation_stats_ = merge_comm_blocks(blocks_);
}

namespace {
bool is_comm_error(const std::exception_ptr& e) {
  try {
    std::rethrow_exception(e);
  } catch (const CommError&) {
    return true;
  } catch (...) {
    return false;
  }
}
}  // namespace

std::exception_ptr World::root_cause() const {
  // Root-cause exceptions (rank logic errors, injected kills) are
  // surfaced in preference to the secondary CommErrors they caused in
  // peers that were merely blocked on the failed rank. Ties break to
  // the lowest physical rank.
  std::exception_ptr first_comm;
  for (int r = 0; r < ranks_; ++r) {
    const std::exception_ptr& e = errors_[static_cast<std::size_t>(r)];
    if (!e) continue;
    if (!is_comm_error(e)) return e;
    if (!first_comm) first_comm = e;
  }
  return first_comm;
}

void World::reset_elastic_state() {
  generation_.store(0, std::memory_order_release);
  failed_count_.store(0, std::memory_order_release);
  failed_baseline_.store(0, std::memory_order_release);
  active_.resize(static_cast<std::size_t>(ranks_));
  for (int r = 0; r < ranks_; ++r) {
    active_[static_cast<std::size_t>(r)] = r;
    failed_[static_cast<std::size_t>(r)].store(false,
                                               std::memory_order_release);
  }
}

void World::reset_wire_sequencing() noexcept {
  const std::size_t n = static_cast<std::size_t>(ranks_);
  for (std::size_t i = 0; i < n * n; ++i) {
    channel_seq_[i].store(0, std::memory_order_relaxed);
  }
  for (std::size_t i = 0; i < n; ++i) {
    op_epoch_[i].store(0, std::memory_order_relaxed);
  }
}

std::vector<int> World::failed_ranks() const {
  std::vector<int> out;
  for (int r = 0; r < ranks_; ++r) {
    if (failed_[static_cast<std::size_t>(r)].load(std::memory_order_acquire)) {
      out.push_back(r);
    }
  }
  return out;
}

void World::heartbeat(int phys_rank) {
  // 1-based operation epoch: the Nth send/recv/barrier this rank enters.
  const std::uint64_t epoch =
      op_epoch_[static_cast<std::size_t>(phys_rank)].fetch_add(
          1, std::memory_order_relaxed) +
      1;
  fault::FaultInjector* inj = fault::FaultInjector::active();
  if (inj == nullptr) return;
  const auto& kills = inj->plan().rank_kills;
  if (kills.empty()) return;
  // Kills fire in generation 0 only: fail-stop means a rank dies once,
  // and its respawned replacement must not inherit the death sentence.
  if (generation_.load(std::memory_order_acquire) != 0) return;
  for (const fault::RankKillSpec& k : kills) {
    if (k.world != ranks_ || k.victim != phys_rank || k.epoch != epoch) {
      continue;
    }
    inj->record(fault::Event::kRankKill);
    CAPOW_TINSTANT("fault.rank.kill", "fault");
    failed_[static_cast<std::size_t>(phys_rank)].store(
        true, std::memory_order_release);
    failed_count_.fetch_add(1, std::memory_order_acq_rel);
    throw RankKilled("rank " + std::to_string(phys_rank) +
                     " killed fail-stop at comm epoch " +
                     std::to_string(epoch) + " (rank.kill)");
  }
}

void World::flush_stale_messages(CommMatrix& into) {
  for (int dest = 0; dest < ranks_; ++dest) {
    Mailbox& box = mailboxes_[static_cast<std::size_t>(dest)];
    std::lock_guard lock(box.mutex);
    for (const Message& m : box.messages) {
      if (!into.empty() && m.source >= 0 && m.source < ranks_) {
        EdgeStats& e = into.edge(m.source, dest);
        ++e.discarded_messages;
        e.discarded_bytes +=
            static_cast<std::uint64_t>(m.payload.size()) * sizeof(double);
      }
    }
    box.messages.clear();
  }
}

void World::mark_exited(int rank, bool failed) noexcept {
  if (failed) poisoned_.store(true, std::memory_order_release);
  exited_[static_cast<std::size_t>(rank)].store(true,
                                                std::memory_order_release);
  exited_count_.fetch_add(1, std::memory_order_acq_rel);
  // Wake every blocked receiver/barrier waiter so it can observe the
  // new exit/poison state instead of sleeping out its full timeout.
  for (auto& box : mailboxes_) {
    std::lock_guard lock(box.mutex);
    box.cv.notify_all();
  }
  {
    std::lock_guard lock(barrier_mutex_);
    barrier_cv_.notify_all();
  }
}

std::uint64_t World::next_channel_seq(int source, int dest) noexcept {
  const std::size_t channel = static_cast<std::size_t>(source) *
                                  static_cast<std::size_t>(ranks_) +
                              static_cast<std::size_t>(dest);
  return channel_seq_[channel].fetch_add(1, std::memory_order_relaxed);
}

void World::post(int dest, Message msg) {
  Mailbox& box = mailboxes_.at(static_cast<std::size_t>(dest));
  {
    std::lock_guard lock(box.mutex);
    box.messages.push_back(std::move(msg));
  }
  box.cv.notify_all();
}

Message World::take(int rank, int source, int tag) {
  Mailbox& box = mailboxes_.at(static_cast<std::size_t>(rank));
  const auto deadline = deadline_after(options_.recv_timeout_seconds);
  // Generation-stamped matching: traffic posted under an older
  // membership generation is invisible here (the recovery driver
  // flushes it with discard accounting between generations; the stamp
  // guards the unwind window where stale and fresh traffic coexist).
  const std::uint64_t gen = generation_.load(std::memory_order_acquire);
  const auto matches = [&](const Message& m) {
    return m.source == source && m.tag == tag && m.generation == gen;
  };
  std::unique_lock lock(box.mutex);
  for (;;) {
    for (auto it = box.messages.begin(); it != box.messages.end(); ++it) {
      if (matches(*it)) {
        Message msg = std::move(*it);
        box.messages.erase(it);
        return msg;
      }
    }
    // No matching message buffered. Blocking is only correct while the
    // source can still send: an exited source means the message will
    // never arrive. A poisoned world alone is *not* grounds to give up:
    // an alive source either posts the message (the scan above finds it
    // even post-poison) or exits (caught below, mark_exited wakes us).
    // Waiting out the difference is what makes every recv outcome a
    // pure dataflow function — whether the sender reached its send —
    // rather than a race between the mailbox and the poison flag, and
    // dataflow determinism is what lets chaos CI diff the comm counters
    // of a dying generation across identical runs. The recv timeout
    // still bounds the wait if neither happens (application deadlock).
    if (rank_exited(source)) {
      throw CommError("recv: rank " + std::to_string(source) +
                      " exited without sending (receiver=" +
                      std::to_string(rank) + ", tag=" + std::to_string(tag) +
                      ")");
    }
    if (box.cv.wait_until(lock, deadline) == std::cv_status::timeout) {
      // One final scan: the message may have been posted between the
      // last scan and the timeout.
      for (auto it = box.messages.begin(); it != box.messages.end(); ++it) {
        if (matches(*it)) {
          Message msg = std::move(*it);
          box.messages.erase(it);
          return msg;
        }
      }
      throw CommError("recv: rank " + std::to_string(rank) +
                      " timed out after " +
                      std::to_string(options_.recv_timeout_seconds) +
                      "s awaiting (source=" + std::to_string(source) +
                      ", tag=" + std::to_string(tag) + ")");
    }
  }
}

void World::barrier_wait() {
  const auto deadline = deadline_after(options_.recv_timeout_seconds);
  // The barrier spans the *active* set: dead ranks have no thread to
  // arrive, so a shrunk generation's barrier must not wait for them.
  const int expected = static_cast<int>(active_.size());
  std::unique_lock lock(barrier_mutex_);
  const std::uint64_t gen = barrier_generation_;
  if (++barrier_arrived_ == expected) {
    barrier_arrived_ = 0;
    ++barrier_generation_;
    barrier_cv_.notify_all();
    return;
  }
  while (barrier_generation_ == gen) {
    // A rank that exited before arriving can never complete this
    // generation (a rank blocked *in* the barrier cannot exit, so any
    // exit observed while our generation is pending is a missing
    // participant).
    if (poisoned() || exited_count_.load(std::memory_order_acquire) > 0) {
      --barrier_arrived_;
      throw CommError("barrier: world poisoned or a rank exited before "
                      "the barrier completed");
    }
    if (barrier_cv_.wait_until(lock, deadline) == std::cv_status::timeout &&
        barrier_generation_ == gen) {
      --barrier_arrived_;
      throw CommError("barrier: timed out after " +
                      std::to_string(options_.recv_timeout_seconds) + "s");
    }
  }
}

int Communicator::world_size() const noexcept { return world_->size(); }

int Communicator::phys_of(int v) const {
  return world_->active_[static_cast<std::size_t>(v)];
}

int Communicator::virt_of(int p) const {
  const int n = static_cast<int>(world_->active_.size());
  for (int v = 0; v < n; ++v) {
    if (world_->active_[static_cast<std::size_t>(v)] == p) return v;
  }
  return -1;
}

Communicator Communicator::sub(int count) const {
  if (count <= 0 || count > size_) {
    throw std::invalid_argument("Communicator::sub: bad rank count");
  }
  if (rank_ >= count) {
    throw std::invalid_argument(
        "Communicator::sub: rank outside the sub-communicator prefix");
  }
  return Communicator(*world_, rank_, phys_, count);
}

void Communicator::send(int dest, int tag, std::span<const double> data) {
  if (dest < 0 || dest >= size()) {
    throw std::out_of_range("send: bad destination rank");
  }
  world_->heartbeat(phys_);
  const int phys_dest = phys_of(dest);
  const std::uint64_t bytes = data.size() * sizeof(double);
  // Sequence numbers are drawn unconditionally so matched send/recv
  // spans can share one flow id whether or not faults are armed (the
  // per-channel draw order — which fault draws are keyed on — is the
  // same either way). Channels are *physical* coordinates with the full
  // world size as stride: stable identities that keep plain-run draws
  // byte-identical and survive membership changes.
  const std::uint64_t seq = world_->next_channel_seq(phys_, phys_dest);
  CAPOW_TSPAN_ARGS3("comm.send", "dist", "dest", phys_dest, "bytes", bytes,
                    "seq", seq);
  trace::count_message(bytes);
  RankCommBlock* block = world_->comm_block(phys_);
  EdgeStats* edge = block != nullptr
                        ? &block->out[static_cast<std::size_t>(phys_dest)]
                        : nullptr;
  Message msg;
  msg.source = phys_;
  msg.tag = tag;
  msg.seq = seq;
  msg.generation = world_->generation();
  msg.payload.assign(data.begin(), data.end());

  fault::FaultInjector* inj = fault::FaultInjector::active();
  if (inj == nullptr || !inj->plan().any_comm()) {
    world_->post(phys_dest, std::move(msg));
    if (edge != nullptr) {
      ++edge->messages;
      edge->payload_bytes += bytes;
    }
    return;
  }

  // Unreliable-link model: each delivery attempt can be dropped or
  // corrupted (a corrupted frame is caught by the link CRC, so both
  // look like loss to the sender); the sender retransmits with
  // exponential backoff until an attempt lands or the budget runs out.
  // Draws are keyed on the (channel, message sequence, attempt) logical
  // coordinates so the fault schedule is independent of timing.
  const std::uint64_t channel =
      static_cast<std::uint64_t>(phys_) *
          static_cast<std::uint64_t>(world_->size()) +
      static_cast<std::uint64_t>(phys_dest);

  if (inj->fire(fault::Site::kCommDelay, fault::key(channel, seq))) {
    inj->record(fault::Event::kCommDelay);
    CAPOW_TINSTANT("fault.comm.delay", "fault");
    const auto t0 = std::chrono::steady_clock::now();
    sleep_ms(inj->plan().comm_delay_ms);
    if (edge != nullptr) edge->send_block_ns += elapsed_ns(t0);
  }

  const int max_attempts = world_->options().max_send_attempts;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (world_->poisoned() || world_->has_failed_ranks()) {
      throw CommError("send: world poisoned or a rank failed (dest=" +
                      std::to_string(phys_dest) + ")");
    }
    bool lost = false;
    if (inj->fire(fault::Site::kCommDrop,
                  fault::key(channel, seq,
                             2 * static_cast<std::uint64_t>(attempt)))) {
      inj->record(fault::Event::kCommDrop);
      CAPOW_TINSTANT("fault.comm.drop", "fault");
      lost = true;
    } else if (inj->fire(
                   fault::Site::kCommCorrupt,
                   fault::key(channel, seq,
                              2 * static_cast<std::uint64_t>(attempt) + 1))) {
      inj->record(fault::Event::kCommCorrupt);
      CAPOW_TINSTANT("fault.comm.corrupt", "fault");
      if (edge != nullptr) ++edge->corruptions;
      lost = true;
    }
    if (!lost) {
      world_->post(phys_dest, std::move(msg));
      if (edge != nullptr) {
        ++edge->messages;
        edge->payload_bytes += bytes;
      }
      return;
    }
    if (attempt + 1 < max_attempts) {
      inj->record(fault::Event::kCommRetry);
      CAPOW_TINSTANT("fault.comm.retry", "fault");
      if (edge != nullptr) ++edge->retransmits;
      const double factor =
          static_cast<double>(1u << (attempt < 10 ? attempt : 10));
      // Interruptible backoff: sleep in short slices, polling the
      // poison flag and the newly-failed set, so a sender caught in the
      // high end of the exponential ladder aborts within ~100us of a
      // rank death instead of sleeping out the full schedule (which at
      // attempt 10+ can exceed the whole recovery budget).
      const double total_ms = world_->options().retry_backoff_us * factor *
                              1e-3;
      constexpr double kSliceMs = 0.1;
      const auto t0 = std::chrono::steady_clock::now();
      double slept_ms = 0.0;
      while (slept_ms < total_ms) {
        if (world_->poisoned() || world_->has_failed_ranks()) break;
        const double slice = std::min(kSliceMs, total_ms - slept_ms);
        sleep_ms(slice);
        slept_ms += slice;
      }
      if (edge != nullptr) edge->send_block_ns += elapsed_ns(t0);
    }
  }
  inj->record(fault::Event::kCommSendFailure);
  CAPOW_TINSTANT("fault.comm.send_failure", "fault");
  if (block != nullptr) ++block->self.send_failures;
  throw CommError("send: message to rank " + std::to_string(phys_dest) +
                  " (tag=" + std::to_string(tag) + ") lost after " +
                  std::to_string(max_attempts) + " attempts");
}

Message Communicator::recv(int source, int tag) {
  if (source < 0 || source >= size()) {
    throw std::out_of_range("recv: bad source rank");
  }
  world_->heartbeat(phys_);
  const int phys_src = phys_of(source);
#if CAPOW_TELEMETRY_ENABLED
  telemetry::SpanScope span("comm.recv", "dist", "source",
                            static_cast<std::int64_t>(phys_src), "tag",
                            static_cast<std::int64_t>(tag));
#endif
  RankCommBlock* block = world_->comm_block(phys_);
  const auto t0 = std::chrono::steady_clock::now();
  try {
    Message msg = world_->take(phys_, phys_src, tag);
    if (block != nullptr) {
      block->self.recv_wait_ns += elapsed_ns(t0);
      EdgeStats& edge = block->in[static_cast<std::size_t>(phys_src)];
      ++edge.recv_messages;
      edge.recv_bytes += msg.payload.size() * sizeof(double);
    }
#if CAPOW_TELEMETRY_ENABLED
    span.set_arg(2, "seq", static_cast<std::int64_t>(msg.seq));
#endif
    // Callers speak virtual ranks; translate the envelope back from the
    // physical rank the wire stamped.
    msg.source = source;
    return msg;
  } catch (...) {
    // Failed waits (poison, peer exit, timeout) are still blocked time.
    if (block != nullptr) block->self.recv_wait_ns += elapsed_ns(t0);
    throw;
  }
}

void Communicator::barrier() {
  CAPOW_TSPAN("comm.barrier", "dist");
  world_->heartbeat(phys_);
  trace::count_sync();
  RankCommBlock* block = world_->comm_block(phys_);
  if (block == nullptr) {
    world_->barrier_wait();
    return;
  }
  ++block->self.barriers;
  const auto t0 = std::chrono::steady_clock::now();
  try {
    world_->barrier_wait();
    block->self.barrier_wait_ns += elapsed_ns(t0);
  } catch (...) {
    block->self.barrier_wait_ns += elapsed_ns(t0);
    throw;
  }
}

namespace {
// Collectives use a reserved high tag space to avoid colliding with
// user point-to-point traffic.
constexpr int kBcastTag = 1 << 20;
constexpr int kReduceTag = kBcastTag + 1;
constexpr int kGatherTag = kBcastTag + 2;
}  // namespace

void Communicator::broadcast(int root, std::vector<double>& data) {
  if (rank_ == root) {
    for (int r = 0; r < size(); ++r) {
      if (r != root) send(r, kBcastTag, data);
    }
  } else {
    data = recv(root, kBcastTag).payload;
  }
}

void Communicator::reduce_sum(int root, std::vector<double>& data) {
  if (rank_ == root) {
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      const Message m = recv(r, kReduceTag);
      if (m.payload.size() != data.size()) {
        throw std::invalid_argument("reduce_sum: size mismatch");
      }
      for (std::size_t i = 0; i < data.size(); ++i) {
        data[i] += m.payload[i];
      }
    }
  } else {
    send(root, kReduceTag, data);
  }
}

void Communicator::gather(int root, std::span<const double> mine,
                          std::vector<std::vector<double>>& out) {
  out.clear();
  if (rank_ == root) {
    out.resize(static_cast<std::size_t>(size()));
    out[static_cast<std::size_t>(root)].assign(mine.begin(), mine.end());
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      out[static_cast<std::size_t>(r)] = recv(r, kGatherTag).payload;
    }
  } else {
    send(root, kGatherTag, mine);
  }
}

}  // namespace capow::dist
