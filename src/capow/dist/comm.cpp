#include "capow/dist/comm.hpp"

#include <exception>
#include <stdexcept>
#include <thread>

#include "capow/telemetry/telemetry.hpp"
#include "capow/trace/counters.hpp"

namespace capow::dist {

World::World(int ranks) : ranks_(ranks), mailboxes_(ranks > 0 ? ranks : 0) {
  if (ranks <= 0) throw std::invalid_argument("World: ranks must be >= 1");
}

void World::run(const std::function<void(Communicator&)>& body) {
  std::vector<std::thread> threads;
  threads.reserve(ranks_);
  std::mutex emutex;
  std::exception_ptr first;
  for (int r = 0; r < ranks_; ++r) {
    threads.emplace_back([this, r, &body, &emutex, &first] {
      Communicator comm(*this, r);
      try {
        body(comm);
      } catch (...) {
        std::lock_guard lock(emutex);
        if (!first) first = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first) std::rethrow_exception(first);
}

void World::post(int dest, Message msg) {
  Mailbox& box = mailboxes_.at(dest);
  {
    std::lock_guard lock(box.mutex);
    box.messages.push_back(std::move(msg));
  }
  box.cv.notify_all();
}

Message World::take(int rank, int source, int tag) {
  Mailbox& box = mailboxes_.at(rank);
  std::unique_lock lock(box.mutex);
  for (;;) {
    for (auto it = box.messages.begin(); it != box.messages.end(); ++it) {
      if (it->source == source && it->tag == tag) {
        Message msg = std::move(*it);
        box.messages.erase(it);
        return msg;
      }
    }
    box.cv.wait(lock);
  }
}

void World::barrier_wait() {
  std::unique_lock lock(barrier_mutex_);
  const std::uint64_t gen = barrier_generation_;
  if (++barrier_arrived_ == ranks_) {
    barrier_arrived_ = 0;
    ++barrier_generation_;
    barrier_cv_.notify_all();
    return;
  }
  barrier_cv_.wait(lock, [&] { return barrier_generation_ != gen; });
}

void Communicator::send(int dest, int tag, std::span<const double> data) {
  if (dest < 0 || dest >= size()) {
    throw std::out_of_range("send: bad destination rank");
  }
  CAPOW_TSPAN_ARGS2("comm.send", "dist", "dest", dest, "bytes",
                    data.size() * sizeof(double));
  trace::count_message(data.size() * sizeof(double));
  Message msg;
  msg.source = rank_;
  msg.tag = tag;
  msg.payload.assign(data.begin(), data.end());
  world_->post(dest, std::move(msg));
}

Message Communicator::recv(int source, int tag) {
  if (source < 0 || source >= size()) {
    throw std::out_of_range("recv: bad source rank");
  }
  CAPOW_TSPAN_ARGS2("comm.recv", "dist", "source", source, "tag", tag);
  return world_->take(rank_, source, tag);
}

void Communicator::barrier() {
  CAPOW_TSPAN("comm.barrier", "dist");
  trace::count_sync();
  world_->barrier_wait();
}

namespace {
// Collectives use a reserved high tag space to avoid colliding with
// user point-to-point traffic.
constexpr int kBcastTag = 1 << 20;
constexpr int kReduceTag = kBcastTag + 1;
constexpr int kGatherTag = kBcastTag + 2;
}  // namespace

void Communicator::broadcast(int root, std::vector<double>& data) {
  if (rank_ == root) {
    for (int r = 0; r < size(); ++r) {
      if (r != root) send(r, kBcastTag, data);
    }
  } else {
    data = recv(root, kBcastTag).payload;
  }
}

void Communicator::reduce_sum(int root, std::vector<double>& data) {
  if (rank_ == root) {
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      const Message m = recv(r, kReduceTag);
      if (m.payload.size() != data.size()) {
        throw std::invalid_argument("reduce_sum: size mismatch");
      }
      for (std::size_t i = 0; i < data.size(); ++i) {
        data[i] += m.payload[i];
      }
    }
  } else {
    send(root, kReduceTag, data);
  }
}

void Communicator::gather(int root, std::span<const double> mine,
                          std::vector<std::vector<double>>& out) {
  out.clear();
  if (rank_ == root) {
    out.resize(size());
    out[root].assign(mine.begin(), mine.end());
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      out[r] = recv(r, kGatherTag).payload;
    }
  } else {
    send(root, kGatherTag, mine);
  }
}

}  // namespace capow::dist
