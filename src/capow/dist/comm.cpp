#include "capow/dist/comm.hpp"

#include <chrono>
#include <exception>
#include <stdexcept>
#include <string>
#include <thread>

#include "capow/fault/fault.hpp"
#include "capow/telemetry/telemetry.hpp"
#include "capow/trace/counters.hpp"

namespace capow::dist {

namespace {

std::chrono::steady_clock::time_point deadline_after(double seconds) {
  return std::chrono::steady_clock::now() +
         std::chrono::duration_cast<std::chrono::steady_clock::duration>(
             std::chrono::duration<double>(seconds));
}

void sleep_ms(double ms) {
  if (ms <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point since) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

/// Restores the calling thread's telemetry rank tag on scope exit, so a
/// caller thread reused outside World::run stops stamping rank events.
struct ThreadRankScope {
#if CAPOW_TELEMETRY_ENABLED
  explicit ThreadRankScope(int rank) { telemetry::set_thread_rank(rank); }
  ~ThreadRankScope() { telemetry::set_thread_rank(-1); }
#else
  explicit ThreadRankScope(int) {}
#endif
  ThreadRankScope(const ThreadRankScope&) = delete;
  ThreadRankScope& operator=(const ThreadRankScope&) = delete;
};

}  // namespace

World::World(int ranks, const WorldOptions& options)
    : ranks_(ranks),
      options_(options),
      mailboxes_(ranks > 0 ? static_cast<std::size_t>(ranks) : 0) {
  if (ranks <= 0) throw std::invalid_argument("World: ranks must be >= 1");
  if (options_.recv_timeout_seconds <= 0.0) {
    throw std::invalid_argument("World: recv_timeout_seconds must be > 0");
  }
  if (options_.max_send_attempts < 1) {
    throw std::invalid_argument("World: max_send_attempts must be >= 1");
  }
  const std::size_t n = static_cast<std::size_t>(ranks);
  exited_ = std::make_unique<std::atomic<bool>[]>(n);
  channel_seq_ = std::make_unique<std::atomic<std::uint64_t>[]>(n * n);
  for (std::size_t i = 0; i < n; ++i) exited_[i].store(false);
  for (std::size_t i = 0; i < n * n; ++i) channel_seq_[i].store(0);
  if (options_.comm_stats) {
    blocks_.reserve(n);
    for (int r = 0; r < ranks; ++r) blocks_.emplace_back(ranks);
  }
}

void World::run(const std::function<void(Communicator&)>& body) {
  // A World may be reused for several collective jobs; each run starts
  // from a clean failure state.
  poisoned_.store(false, std::memory_order_release);
  exited_count_.store(0, std::memory_order_release);
  for (int r = 0; r < ranks_; ++r) {
    exited_[static_cast<std::size_t>(r)].store(false,
                                               std::memory_order_release);
  }
  for (RankCommBlock& b : blocks_) b.reset(ranks_);

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(ranks_));
  std::mutex emutex;
  // Root-cause exceptions (rank logic errors, injected failures) are
  // rethrown in preference to the secondary CommErrors they cause in
  // peers that were merely blocked on the failed rank.
  std::exception_ptr first_other;
  std::exception_ptr first_comm;
  for (int r = 0; r < ranks_; ++r) {
    threads.emplace_back(
        [this, r, &body, &emutex, &first_other, &first_comm] {
          ThreadRankScope rank_tag(r);
          // Each rank is a parallel unit: claim a distinct recorder
          // slot so concurrent ranks never share slot 0's counters.
          trace::ScopedRecorderSlot recorder_slot(r);
          Communicator comm(*this, r);
          RankCommBlock* block = comm_block(r);
          const auto started = std::chrono::steady_clock::now();
          bool failed = false;
          try {
            body(comm);
          } catch (const CommError&) {
            failed = true;
            std::lock_guard lock(emutex);
            if (!first_comm) first_comm = std::current_exception();
          } catch (...) {
            failed = true;
            std::lock_guard lock(emutex);
            if (!first_other) first_other = std::current_exception();
          }
          if (block != nullptr) block->self.active_ns = elapsed_ns(started);
          mark_exited(r, failed);
        });
  }
  for (auto& t : threads) t.join();
  // Merge unconditionally, *before* rethrowing: the counters collected
  // up to a failure are exactly what a poisoned-world post-mortem needs.
  if (!blocks_.empty()) last_stats_ = merge_comm_blocks(blocks_);
  if (first_other) std::rethrow_exception(first_other);
  if (first_comm) std::rethrow_exception(first_comm);
}

void World::mark_exited(int rank, bool failed) noexcept {
  if (failed) poisoned_.store(true, std::memory_order_release);
  exited_[static_cast<std::size_t>(rank)].store(true,
                                                std::memory_order_release);
  exited_count_.fetch_add(1, std::memory_order_acq_rel);
  // Wake every blocked receiver/barrier waiter so it can observe the
  // new exit/poison state instead of sleeping out its full timeout.
  for (auto& box : mailboxes_) {
    std::lock_guard lock(box.mutex);
    box.cv.notify_all();
  }
  {
    std::lock_guard lock(barrier_mutex_);
    barrier_cv_.notify_all();
  }
}

std::uint64_t World::next_channel_seq(int source, int dest) noexcept {
  const std::size_t channel = static_cast<std::size_t>(source) *
                                  static_cast<std::size_t>(ranks_) +
                              static_cast<std::size_t>(dest);
  return channel_seq_[channel].fetch_add(1, std::memory_order_relaxed);
}

void World::post(int dest, Message msg) {
  Mailbox& box = mailboxes_.at(static_cast<std::size_t>(dest));
  {
    std::lock_guard lock(box.mutex);
    box.messages.push_back(std::move(msg));
  }
  box.cv.notify_all();
}

Message World::take(int rank, int source, int tag) {
  Mailbox& box = mailboxes_.at(static_cast<std::size_t>(rank));
  const auto deadline = deadline_after(options_.recv_timeout_seconds);
  std::unique_lock lock(box.mutex);
  for (;;) {
    for (auto it = box.messages.begin(); it != box.messages.end(); ++it) {
      if (it->source == source && it->tag == tag) {
        Message msg = std::move(*it);
        box.messages.erase(it);
        return msg;
      }
    }
    // No matching message buffered. Blocking is only correct while the
    // source can still send: a poisoned world or an exited source means
    // the message will never arrive.
    if (poisoned()) {
      throw CommError("recv: world poisoned while rank " +
                      std::to_string(rank) + " awaited (source=" +
                      std::to_string(source) + ", tag=" +
                      std::to_string(tag) + ")");
    }
    if (rank_exited(source)) {
      throw CommError("recv: rank " + std::to_string(source) +
                      " exited without sending (receiver=" +
                      std::to_string(rank) + ", tag=" + std::to_string(tag) +
                      ")");
    }
    if (box.cv.wait_until(lock, deadline) == std::cv_status::timeout) {
      // One final scan: the message may have been posted between the
      // last scan and the timeout.
      for (auto it = box.messages.begin(); it != box.messages.end(); ++it) {
        if (it->source == source && it->tag == tag) {
          Message msg = std::move(*it);
          box.messages.erase(it);
          return msg;
        }
      }
      throw CommError("recv: rank " + std::to_string(rank) +
                      " timed out after " +
                      std::to_string(options_.recv_timeout_seconds) +
                      "s awaiting (source=" + std::to_string(source) +
                      ", tag=" + std::to_string(tag) + ")");
    }
  }
}

void World::barrier_wait() {
  const auto deadline = deadline_after(options_.recv_timeout_seconds);
  std::unique_lock lock(barrier_mutex_);
  const std::uint64_t gen = barrier_generation_;
  if (++barrier_arrived_ == ranks_) {
    barrier_arrived_ = 0;
    ++barrier_generation_;
    barrier_cv_.notify_all();
    return;
  }
  while (barrier_generation_ == gen) {
    // A rank that exited before arriving can never complete this
    // generation (a rank blocked *in* the barrier cannot exit, so any
    // exit observed while our generation is pending is a missing
    // participant).
    if (poisoned() || exited_count_.load(std::memory_order_acquire) > 0) {
      --barrier_arrived_;
      throw CommError("barrier: world poisoned or a rank exited before "
                      "the barrier completed");
    }
    if (barrier_cv_.wait_until(lock, deadline) == std::cv_status::timeout &&
        barrier_generation_ == gen) {
      --barrier_arrived_;
      throw CommError("barrier: timed out after " +
                      std::to_string(options_.recv_timeout_seconds) + "s");
    }
  }
}

void Communicator::send(int dest, int tag, std::span<const double> data) {
  if (dest < 0 || dest >= size()) {
    throw std::out_of_range("send: bad destination rank");
  }
  const std::uint64_t bytes = data.size() * sizeof(double);
  // Sequence numbers are drawn unconditionally so matched send/recv
  // spans can share one flow id whether or not faults are armed (the
  // per-channel draw order — which fault draws are keyed on — is the
  // same either way).
  const std::uint64_t seq = world_->next_channel_seq(rank_, dest);
  CAPOW_TSPAN_ARGS3("comm.send", "dist", "dest", dest, "bytes", bytes,
                    "seq", seq);
  trace::count_message(bytes);
  RankCommBlock* block = world_->comm_block(rank_);
  EdgeStats* edge =
      block != nullptr ? &block->out[static_cast<std::size_t>(dest)] : nullptr;
  Message msg;
  msg.source = rank_;
  msg.tag = tag;
  msg.seq = seq;
  msg.payload.assign(data.begin(), data.end());

  fault::FaultInjector* inj = fault::FaultInjector::active();
  if (inj == nullptr || !inj->plan().any_comm()) {
    world_->post(dest, std::move(msg));
    if (edge != nullptr) {
      ++edge->messages;
      edge->payload_bytes += bytes;
    }
    return;
  }

  // Unreliable-link model: each delivery attempt can be dropped or
  // corrupted (a corrupted frame is caught by the link CRC, so both
  // look like loss to the sender); the sender retransmits with
  // exponential backoff until an attempt lands or the budget runs out.
  // Draws are keyed on the (channel, message sequence, attempt) logical
  // coordinates so the fault schedule is independent of timing.
  const std::uint64_t channel =
      static_cast<std::uint64_t>(rank_) * static_cast<std::uint64_t>(size()) +
      static_cast<std::uint64_t>(dest);

  if (inj->fire(fault::Site::kCommDelay, fault::key(channel, seq))) {
    inj->record(fault::Event::kCommDelay);
    CAPOW_TINSTANT("fault.comm.delay", "fault");
    const auto t0 = std::chrono::steady_clock::now();
    sleep_ms(inj->plan().comm_delay_ms);
    if (edge != nullptr) edge->send_block_ns += elapsed_ns(t0);
  }

  const int max_attempts = world_->options().max_send_attempts;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (world_->poisoned()) {
      throw CommError("send: world poisoned (dest=" + std::to_string(dest) +
                      ")");
    }
    bool lost = false;
    if (inj->fire(fault::Site::kCommDrop,
                  fault::key(channel, seq,
                             2 * static_cast<std::uint64_t>(attempt)))) {
      inj->record(fault::Event::kCommDrop);
      CAPOW_TINSTANT("fault.comm.drop", "fault");
      lost = true;
    } else if (inj->fire(
                   fault::Site::kCommCorrupt,
                   fault::key(channel, seq,
                              2 * static_cast<std::uint64_t>(attempt) + 1))) {
      inj->record(fault::Event::kCommCorrupt);
      CAPOW_TINSTANT("fault.comm.corrupt", "fault");
      if (edge != nullptr) ++edge->corruptions;
      lost = true;
    }
    if (!lost) {
      world_->post(dest, std::move(msg));
      if (edge != nullptr) {
        ++edge->messages;
        edge->payload_bytes += bytes;
      }
      return;
    }
    if (attempt + 1 < max_attempts) {
      inj->record(fault::Event::kCommRetry);
      CAPOW_TINSTANT("fault.comm.retry", "fault");
      if (edge != nullptr) ++edge->retransmits;
      const double factor =
          static_cast<double>(1u << (attempt < 10 ? attempt : 10));
      const auto t0 = std::chrono::steady_clock::now();
      sleep_ms(world_->options().retry_backoff_us * factor * 1e-3);
      if (edge != nullptr) edge->send_block_ns += elapsed_ns(t0);
    }
  }
  inj->record(fault::Event::kCommSendFailure);
  CAPOW_TINSTANT("fault.comm.send_failure", "fault");
  if (block != nullptr) ++block->self.send_failures;
  throw CommError("send: message to rank " + std::to_string(dest) +
                  " (tag=" + std::to_string(tag) + ") lost after " +
                  std::to_string(max_attempts) + " attempts");
}

Message Communicator::recv(int source, int tag) {
  if (source < 0 || source >= size()) {
    throw std::out_of_range("recv: bad source rank");
  }
#if CAPOW_TELEMETRY_ENABLED
  telemetry::SpanScope span("comm.recv", "dist", "source",
                            static_cast<std::int64_t>(source), "tag",
                            static_cast<std::int64_t>(tag));
#endif
  RankCommBlock* block = world_->comm_block(rank_);
  const auto t0 = std::chrono::steady_clock::now();
  try {
    Message msg = world_->take(rank_, source, tag);
    if (block != nullptr) {
      block->self.recv_wait_ns += elapsed_ns(t0);
      EdgeStats& edge = block->in[static_cast<std::size_t>(source)];
      ++edge.recv_messages;
      edge.recv_bytes += msg.payload.size() * sizeof(double);
    }
#if CAPOW_TELEMETRY_ENABLED
    span.set_arg(2, "seq", static_cast<std::int64_t>(msg.seq));
#endif
    return msg;
  } catch (...) {
    // Failed waits (poison, peer exit, timeout) are still blocked time.
    if (block != nullptr) block->self.recv_wait_ns += elapsed_ns(t0);
    throw;
  }
}

void Communicator::barrier() {
  CAPOW_TSPAN("comm.barrier", "dist");
  trace::count_sync();
  RankCommBlock* block = world_->comm_block(rank_);
  if (block == nullptr) {
    world_->barrier_wait();
    return;
  }
  ++block->self.barriers;
  const auto t0 = std::chrono::steady_clock::now();
  try {
    world_->barrier_wait();
    block->self.barrier_wait_ns += elapsed_ns(t0);
  } catch (...) {
    block->self.barrier_wait_ns += elapsed_ns(t0);
    throw;
  }
}

namespace {
// Collectives use a reserved high tag space to avoid colliding with
// user point-to-point traffic.
constexpr int kBcastTag = 1 << 20;
constexpr int kReduceTag = kBcastTag + 1;
constexpr int kGatherTag = kBcastTag + 2;
}  // namespace

void Communicator::broadcast(int root, std::vector<double>& data) {
  if (rank_ == root) {
    for (int r = 0; r < size(); ++r) {
      if (r != root) send(r, kBcastTag, data);
    }
  } else {
    data = recv(root, kBcastTag).payload;
  }
}

void Communicator::reduce_sum(int root, std::vector<double>& data) {
  if (rank_ == root) {
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      const Message m = recv(r, kReduceTag);
      if (m.payload.size() != data.size()) {
        throw std::invalid_argument("reduce_sum: size mismatch");
      }
      for (std::size_t i = 0; i < data.size(); ++i) {
        data[i] += m.payload[i];
      }
    }
  } else {
    send(root, kReduceTag, data);
  }
}

void Communicator::gather(int root, std::span<const double> mine,
                          std::vector<std::vector<double>>& out) {
  out.clear();
  if (rank_ == root) {
    out.resize(static_cast<std::size_t>(size()));
    out[static_cast<std::size_t>(root)].assign(mine.begin(), mine.end());
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      out[static_cast<std::size_t>(r)] = recv(r, kGatherTag).payload;
    }
  } else {
    send(root, kGatherTag, mine);
  }
}

}  // namespace capow::dist
