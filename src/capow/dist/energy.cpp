#include "capow/dist/energy.hpp"

#include <algorithm>
#include <stdexcept>

namespace capow::dist {

void DistMachineSpec::validate() const {
  node.validate();
  if (link_bandwidth_bytes_per_s <= 0.0 || link_latency_s < 0.0 ||
      link_energy_per_byte_nj < 0.0 || nic_static_w < 0.0) {
    throw std::invalid_argument("DistMachineSpec: bad link parameters");
  }
}

DistRunEstimate estimate_distributed_run(const DistMachineSpec& spec,
                                         unsigned ranks,
                                         double max_rank_flops,
                                         double efficiency,
                                         double total_message_bytes,
                                         std::uint64_t messages) {
  spec.validate();
  if (ranks == 0) {
    throw std::invalid_argument("estimate_distributed_run: ranks == 0");
  }
  if (efficiency <= 0.0 || efficiency > 1.0) {
    throw std::invalid_argument(
        "estimate_distributed_run: efficiency outside (0,1]");
  }
  if (max_rank_flops < 0.0 || total_message_bytes < 0.0) {
    throw std::invalid_argument(
        "estimate_distributed_run: negative cost");
  }

  const double compute_s =
      max_rank_flops / (spec.node.per_core_peak_flops() * efficiency);
  const double comm_s =
      total_message_bytes / spec.link_bandwidth_bytes_per_s +
      static_cast<double>(messages) * spec.link_latency_s;
  DistRunEstimate est;
  est.seconds = std::max(compute_s, comm_s);
  if (est.seconds <= 0.0) return est;

  // One busy core per node, the rest idle-but-clocked; statics always.
  const auto& core = spec.node.core;
  const double u = compute_s / est.seconds;
  const double busy = (1.0 - u) * core.stall_power_w +
                      u * core.active_power_w(efficiency);
  const double node_power = spec.node.power.pp0_static_w +
                            spec.node.power.uncore_static_w + busy +
                            (spec.node.core_count - 1) * core.idle_power_w;
  est.node_energy_j = ranks * node_power * est.seconds;
  est.link_energy_j =
      total_message_bytes * spec.link_energy_per_byte_nj * 1e-9 +
      ranks * spec.nic_static_w * est.seconds;
  return est;
}

}  // namespace capow::dist
