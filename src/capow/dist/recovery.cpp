#include "capow/dist/recovery.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <stdexcept>
#include <string>

#include "capow/telemetry/telemetry.hpp"

namespace capow::dist {

namespace {

std::atomic<std::uint64_t> g_rank_failures{0};
std::atomic<std::uint64_t> g_recoveries{0};

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point since) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

/// True when `e` is the one failure class recovery may absorb.
bool is_rank_killed(const std::exception_ptr& e) {
  try {
    std::rethrow_exception(e);
  } catch (const RankKilled&) {
    return true;
  } catch (...) {
    return false;
  }
}

bool is_comm(const std::exception_ptr& e) {
  try {
    std::rethrow_exception(e);
  } catch (const CommError&) {
    return true;
  } catch (...) {
    return false;
  }
}

}  // namespace

const char* recovery_policy_name(RecoveryPolicy p) noexcept {
  switch (p) {
    case RecoveryPolicy::kAbort:
      return "abort";
    case RecoveryPolicy::kShrink:
      return "shrink";
    case RecoveryPolicy::kRespawn:
      return "respawn";
  }
  return "?";
}

RecoveryPolicy parse_recovery_policy(const std::string& name) {
  if (name == "abort") return RecoveryPolicy::kAbort;
  if (name == "shrink") return RecoveryPolicy::kShrink;
  if (name == "respawn") return RecoveryPolicy::kRespawn;
  throw std::invalid_argument("unknown recovery policy '" + name +
                              "' (abort|shrink|respawn)");
}

std::uint64_t rank_failures_total() noexcept {
  return g_rank_failures.load(std::memory_order_relaxed);
}
std::uint64_t recoveries_total() noexcept {
  return g_recoveries.load(std::memory_order_relaxed);
}
void reset_recovery_counters() noexcept {
  g_rank_failures.store(0, std::memory_order_relaxed);
  g_recoveries.store(0, std::memory_order_relaxed);
}

RecoveryReport World::run_elastic(
    const RecoveryOptions& opts,
    const std::function<void(Communicator&, const RecoveryContext&)>& body) {
  reset_elastic_state();
  // An elastic session owns its wire sequencing: starting from zeroed
  // channel counters makes generation 0's fault draws — and therefore
  // the kill schedule — independent of anything the World ran before.
  reset_wire_sequencing();

  RecoveryReport report;
  CommMatrix cumulative;

  // Every surviving rank derives the failed set from wire traffic (a
  // P-length bitmap reduced to virtual root 0 and broadcast back), not
  // from driver state — the agreement protocol a real elastic runtime
  // runs, and real deterministic traffic in the final generation's comm
  // matrix. Generation 0 skips it and is byte-identical to a plain run.
  const auto wrapped = [this, &body](Communicator& comm) {
    RecoveryContext ctx;
    ctx.generation = generation();
    if (ctx.generation > 0) {
#if CAPOW_TELEMETRY_ENABLED
      telemetry::SpanScope span(
          "dist.recovery.agree", "dist", "generation",
          static_cast<std::int64_t>(ctx.generation));
#endif
      std::vector<double> bitmap(static_cast<std::size_t>(size()), 0.0);
      for (int p : failed_ranks()) {
        bitmap[static_cast<std::size_t>(p)] = 1.0;
      }
      comm.reduce_sum(0, bitmap);
      comm.broadcast(0, bitmap);
      for (int p = 0; p < size(); ++p) {
        if (bitmap[static_cast<std::size_t>(p)] > 0.0) {
          ctx.failed_ranks.push_back(p);
        }
      }
    }
    body(comm, ctx);
  };

  for (;;) {
    run_generation(wrapped);
    if (!blocks_.empty()) cumulative += final_generation_stats_;

    std::exception_ptr cause = root_cause();
    if (!cause) break;  // this generation completed

    // Recoverable iff the policy allows it, the budget has room, a rank
    // actually died this generation, and *every* non-CommError on file
    // is a RankKilled — any other root cause (logic error, injected
    // run failure) keeps run()'s abort semantics untouched.
    bool recoverable = opts.policy != RecoveryPolicy::kAbort &&
                       report.recoveries < opts.max_recoveries &&
                       has_failed_ranks();
    if (recoverable) {
      for (int r = 0; r < ranks_ && recoverable; ++r) {
        const std::exception_ptr& e = errors_[static_cast<std::size_t>(r)];
        if (e && !is_comm(e) && !is_rank_killed(e)) recoverable = false;
      }
    }
    if (!recoverable) {
      if (!blocks_.empty()) last_stats_ = cumulative;
      report.failed_ranks = failed_ranks();
      std::rethrow_exception(cause);
    }

    const auto t0 = std::chrono::steady_clock::now();
    {
#if CAPOW_TELEMETRY_ENABLED
      telemetry::SpanScope span(
          "dist.recovery", "dist", "policy",
          static_cast<std::int64_t>(opts.policy), "generation",
          static_cast<std::int64_t>(generation() + 1));
#endif
      const std::vector<int> dead = failed_ranks();
      g_rank_failures.fetch_add(
          dead.size() > report.failed_ranks.size()
              ? dead.size() - report.failed_ranks.size()
              : 0,
          std::memory_order_relaxed);
      report.failed_ranks = dead;

      // Stale traffic from the dying generation is flushed here, with
      // each unconsumed delivery accounted as discarded on its edge —
      // that is what keeps conserved() closing with a dead rank's
      // partial row retained.
      flush_stale_messages(cumulative);

      // Re-form the active set. Respawn keeps every physical slot (the
      // next generation's thread on a dead slot *is* the replacement
      // rank); shrink drops the dead.
      active_.clear();
      for (int r = 0; r < ranks_; ++r) {
        const bool is_dead =
            failed_[static_cast<std::size_t>(r)].load(
                std::memory_order_acquire);
        if (opts.policy == RecoveryPolicy::kRespawn || !is_dead) {
          active_.push_back(r);
        }
      }
      generation_.fetch_add(1, std::memory_order_acq_rel);
      // A recovered generation is a fresh run of the new set: zeroed
      // sequencing makes its fault draws (and comm matrix) a pure
      // function of seed + survivor set, never of how far the dying
      // generation got.
      reset_wire_sequencing();
      ++report.recoveries;
      report.recovered = true;
      g_recoveries.fetch_add(1, std::memory_order_relaxed);
    }
    report.recovery_ns += elapsed_ns(t0);
  }

  if (!blocks_.empty()) last_stats_ = cumulative;
  report.failed_ranks = failed_ranks();
  return report;
}

}  // namespace capow::dist
