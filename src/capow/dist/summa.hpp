// SUMMA and 2.5D classical distributed matrix multiplication.
//
// The paper positions CAPS against the classical communication-avoiding
// line of work (its ref [16], Solomonik & Demmel's 2.5D algorithms).
// These are the comparators: SUMMA on a sqrt(P) x sqrt(P) grid (the
// standard O(n^2/sqrt(P)) per-rank communication pattern) and its 2.5D
// generalization with c-fold replication (cutting communication by
// sqrt(c) at c-fold memory cost — the classical analogue of CAPS's
// BFS memory-for-communication trade).
//
// Data placement follows this module's root-centric convention: rank 0
// holds A, B, C; scatter/gather frames the algorithm's *internal*
// communication pattern, which is what the instrumentation measures and
// the eq8 bench compares.
#pragma once

#include <cstddef>
#include <vector>

#include "capow/abft/abft.hpp"
#include "capow/dist/comm.hpp"
#include "capow/dist/recovery.hpp"
#include "capow/linalg/matrix.hpp"

namespace capow::dist {

/// Process-grid geometry: ranks = rows * cols * layers. SUMMA uses
/// layers == 1; 2.5D replicates the grid over `layers` copies.
struct GridSpec {
  int rows = 1;
  int cols = 1;
  int layers = 1;

  int ranks() const noexcept { return rows * cols * layers; }
  /// Throws std::invalid_argument when degenerate or (for this
  /// implementation) non-square in the plane.
  void validate() const;
};

/// Collective SUMMA: C = A * B on a rows x cols grid (layers must be 1).
/// Rank 0 passes the operands; n must be divisible by grid.rows and
/// grid.cols. Every rank of `comm` must call it; comm.size() must equal
/// grid.ranks().
///
/// ABFT (abft::resolve_mode semantics — the no-config overload still
/// honors CAPOW_ABFT): in detect/correct mode every point-to-point
/// payload carries a compensated end-to-end checksum word, compared
/// bitwise on receipt — an application-level check independent of the
/// transport's link CRC (which PR 2's comm.corrupt site already covers).
/// Rank 0 additionally guards the whole product with Huang–Abraham
/// checksums; in correct mode a failed verdict triggers a collective
/// re-run (bounded by cfg.max_retries) from the pristine root operands.
/// With the mode off, the wire format is bit-identical to the
/// pre-ABFT protocol.
void summa_multiply(Communicator& comm, const GridSpec& grid,
                    linalg::ConstMatrixView a, linalg::ConstMatrixView b,
                    linalg::MatrixView c);
void summa_multiply(Communicator& comm, const GridSpec& grid,
                    linalg::ConstMatrixView a, linalg::ConstMatrixView b,
                    linalg::MatrixView c, const abft::AbftConfig& cfg);

/// Collective 2.5D multiply: the rows x cols grid is replicated
/// `layers` times; each layer computes a disjoint slice of the k-steps
/// and the result is sum-reduced across layers. Requires
/// grid.rows == grid.cols, layers dividing grid.rows, and n divisible
/// by grid.rows. ABFT semantics match summa_multiply.
void multiply_25d(Communicator& comm, const GridSpec& grid,
                  linalg::ConstMatrixView a, linalg::ConstMatrixView b,
                  linalg::MatrixView c);
void multiply_25d(Communicator& comm, const GridSpec& grid,
                  linalg::ConstMatrixView a, linalg::ConstMatrixView b,
                  linalg::MatrixView c, const abft::AbftConfig& cfg);

/// One rank's checksummed operand panels, cached for reconstruction.
/// `a`/`b` are bit-exact flattened copies of the nb x nb blocks the
/// scatter assigned; `a_sum`/`b_sum` the abft::payload_checksum words
/// computed at store time and compared *bitwise* at restore time — the
/// reconstruction is accepted only when the replica is the exact bytes
/// that were replicated, which is what makes a respawned run's output
/// bit-identical to the fault-free one.
struct PanelSlot {
  bool valid = false;
  std::size_t nb = 0;
  std::vector<double> a, b;
  double a_sum = 0.0, b_sum = 0.0;
};

/// Driver-owned panel replication cache for summa_multiply_resilient.
/// Outlives generations (the caller holds it across run_elastic's
/// re-runs). Indexed by *physical* rank; the single-writer discipline
/// mirrors RankCommBlock: during a generation, own[r] is written only
/// by rank r's thread and replica[o] only by o's buddy's thread, and
/// the generation join is the happens-before edge to the readers.
struct PanelCacheSet {
  /// Arm buddy replication (set by the driver when the respawn policy
  /// is in play; replication traffic is real comm and costs bandwidth,
  /// so shrink/abort runs leave it off).
  bool enabled = false;
  std::vector<PanelSlot> own;
  std::vector<PanelSlot> replica;

  PanelCacheSet() = default;
  explicit PanelCacheSet(int ranks)
      : own(static_cast<std::size_t>(ranks)),
        replica(static_cast<std::size_t>(ranks)) {}
};

/// Elastic SUMMA: the body to run under World::run_elastic. Adapts to
/// whatever communicator it is handed instead of demanding an exact
/// rank count: picks the largest g with g*g <= comm.size() and
/// n % g == 0, runs SUMMA on the first g*g virtual ranks (comm.sub),
/// and idles the spares. With `cache.enabled`, generation 0 buddy-
/// replicates each grid rank's scattered panels to rank (r+1) % g*g;
/// a recovered respawn generation then skips the re-scatter, restores
/// dead ranks' panels from their buddies (bitwise checksum-verified),
/// and recomputes — bit-identical to the fault-free run because the
/// panels are exact copies feeding the identical gemm sequence. When
/// the cache cannot cover the failed set (adjacent victims, changed
/// grid, shrink remapping) it falls back to a full re-scatter. The
/// whole product is guarded end-to-end by abft::AbftGuard; an unset
/// cfg.mode is promoted to kCorrect (a resilient run that skipped
/// verification would be a contradiction).
void summa_multiply_resilient(Communicator& comm, const RecoveryContext& ctx,
                              PanelCacheSet& cache, linalg::ConstMatrixView a,
                              linalg::ConstMatrixView b, linalg::MatrixView c);
void summa_multiply_resilient(Communicator& comm, const RecoveryContext& ctx,
                              PanelCacheSet& cache, linalg::ConstMatrixView a,
                              linalg::ConstMatrixView b, linalg::MatrixView c,
                              const abft::AbftConfig& cfg);

}  // namespace capow::dist
