// Per-rank, per-edge communication accounting for the mini-MPI runtime.
//
// The paper's thesis is that communication is the lever on
// energy-proportional scaling; validating Eq (8) therefore needs the
// answer to "which rank pair moved how many bytes, and who waited on
// whom" — not just the global byte total trace::count_message provides.
//
// Collection is split into per-rank blocks so the hot path stays
// lock-free and atomic-free: each counter cell is written by exactly one
// thread (a rank owns the send side of its out-edges, the receive side
// of its in-edges, and its own wait clocks), and World::run merges the
// blocks into a CommMatrix after the rank threads join — the join is the
// happens-before edge, so merging needs no synchronization either. The
// merge runs on *every* teardown path, including a poisoned world, so
// the traffic that led up to a failure is reported rather than dropped.
//
// Determinism contract: message/byte/retransmit/corruption counters are
// pure functions of the algorithm and the fault seed (fault draws are
// keyed on logical channel coordinates, not timing), so two runs with
// the same seed produce identical matrices — the CI determinism gate and
// checkpoint-replay audits rely on this. The *_ns wait clocks are wall
// time and excluded from deterministic comparison.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace capow::dist {

/// Counters for one directed (src, dst) edge. The send side is written
/// by src's thread, the recv side by dst's thread.
struct EdgeStats {
  std::uint64_t messages = 0;       ///< successful deliveries src -> dst
  std::uint64_t payload_bytes = 0;  ///< payload bytes delivered
  std::uint64_t retransmits = 0;    ///< re-sent attempts after a loss
  std::uint64_t corruptions = 0;    ///< CRC-detected corrupt frames
  std::uint64_t recv_messages = 0;  ///< messages dst matched from src
  std::uint64_t recv_bytes = 0;     ///< payload bytes dst received
  std::uint64_t send_block_ns = 0;  ///< sender backoff + injected delay
  /// Stale deliveries flushed by elastic recovery: messages a dead (or
  /// unwinding) rank's generation posted that no survivor consumed.
  /// Recorded by the recovery driver between generations, so the
  /// conservation invariant still closes with a dead rank's partial row
  /// retained: delivered == received + discarded.
  std::uint64_t discarded_messages = 0;
  std::uint64_t discarded_bytes = 0;

  EdgeStats& operator+=(const EdgeStats& o) noexcept;

  /// Equality over the seed-deterministic counters. Times are excluded,
  /// and so are the discard counters: how far each survivor progressed
  /// before observing a rank death is scheduling-dependent, so the
  /// stale-traffic split (received vs discarded) varies run to run even
  /// though their sum — and every fault draw — does not.
  bool deterministic_equal(const EdgeStats& o) const noexcept;
};

/// Per-rank wait/progress clocks (written only by the rank's thread).
struct RankStats {
  std::uint64_t recv_wait_ns = 0;     ///< blocked inside recv()
  std::uint64_t barrier_wait_ns = 0;  ///< blocked inside barrier() (skew)
  std::uint64_t barriers = 0;         ///< barriers entered
  std::uint64_t send_failures = 0;    ///< sends lost after every attempt
  std::uint64_t active_ns = 0;        ///< wall time of the rank body

  RankStats& operator+=(const RankStats& o) noexcept;
};

/// The merged P x P snapshot: edge(src, dst) plus per-rank clocks.
class CommMatrix {
 public:
  CommMatrix() = default;
  explicit CommMatrix(int ranks);

  int ranks() const noexcept { return ranks_; }
  bool empty() const noexcept { return ranks_ == 0; }

  EdgeStats& edge(int src, int dst);
  const EdgeStats& edge(int src, int dst) const;
  RankStats& rank(int r);
  const RankStats& rank(int r) const;

  std::uint64_t total_messages() const noexcept;
  std::uint64_t total_payload_bytes() const noexcept;
  std::uint64_t total_retransmits() const noexcept;
  std::uint64_t total_corruptions() const noexcept;

  /// Row sum: bytes rank r pushed onto the wire (successful deliveries).
  std::uint64_t bytes_sent_by(int r) const;
  /// Column sum: bytes rank r pulled off its mailbox.
  std::uint64_t bytes_received_by(int r) const;

  /// max over ranks of (sent + received) bytes — the per-processor
  /// traffic term the Eq (8) lower bound speaks about.
  std::uint64_t max_rank_bytes() const noexcept;

  /// Conservation: every edge's delivered counters equal its received
  /// counters plus the stale deliveries recovery flushed (nothing posted
  /// was silently lost). Holds for runs that completed normally and for
  /// elastic runs that recovered (the dead rank's partial row is
  /// retained, its unconsumed traffic accounted as discarded); a
  /// poisoned world that aborted mid-flight legitimately violates it.
  bool conserved() const noexcept;

  /// Element-wise accumulate (used to merge matrices across repeated
  /// World::run invocations). Ranks must match (or *this be empty).
  CommMatrix& operator+=(const CommMatrix& o);

  /// Deterministic-field equality across every edge (times excluded),
  /// same rank count required.
  bool deterministic_equal(const CommMatrix& o) const noexcept;

 private:
  std::size_t index(int src, int dst) const;

  int ranks_ = 0;
  std::vector<EdgeStats> edges_;      // row-major: src * ranks_ + dst
  std::vector<RankStats> rank_stats_;
};

/// One rank's private counter block (cache-line aligned so rank threads
/// never share a line). Out-edge cells are indexed by destination,
/// in-edge cells by source.
struct alignas(64) RankCommBlock {
  std::vector<EdgeStats> out;  ///< send-side fields of edge(self, dst)
  std::vector<EdgeStats> in;   ///< recv-side fields of edge(src, self)
  RankStats self;

  RankCommBlock() = default;
  explicit RankCommBlock(int ranks)
      : out(static_cast<std::size_t>(ranks)),
        in(static_cast<std::size_t>(ranks)) {}

  void reset(int ranks);
};

/// Merges per-rank blocks into the dense matrix. Caller must have
/// joined the writer threads first.
CommMatrix merge_comm_blocks(const std::vector<RankCommBlock>& blocks);

}  // namespace capow::dist
