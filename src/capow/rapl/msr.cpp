#include "capow/rapl/msr.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace capow::rapl {

namespace {

constexpr std::uint64_t kWrap = 1ull << 32;

std::size_t plane_index(machine::PowerPlane p) {
  return static_cast<std::size_t>(p);
}

}  // namespace

SimulatedMsrDevice::SimulatedMsrDevice(unsigned energy_status_unit)
    : esu_(energy_status_unit),
      joules_per_count_(1.0 / static_cast<double>(1ull << esu_)) {
  if (esu_ > 31) {
    throw std::invalid_argument("SimulatedMsrDevice: ESU out of range");
  }
}

std::uint64_t SimulatedMsrDevice::read(std::uint32_t addr) const {
  switch (addr) {
    case kMsrRaplPowerUnit: {
      // [3:0] power units (1/2^PU W), [12:8] energy status units,
      // [19:16] time units. We encode PU=3 (1/8 W) and TU=10 like
      // Haswell parts; only ESU matters to energy clients.
      const std::uint64_t pu = 3;
      const std::uint64_t tu = 10;
      return pu | (static_cast<std::uint64_t>(esu_) << 8) | (tu << 16);
    }
    case kMsrPkgPowerLimit: {
      std::lock_guard lock(mutex_);
      return power_limit_raw_;
    }
    case kMsrPkgEnergyStatus:
      return energy_status_raw(machine::PowerPlane::kPackage);
    case kMsrPp0EnergyStatus:
      return energy_status_raw(machine::PowerPlane::kPP0);
    case kMsrDramEnergyStatus:
      return energy_status_raw(machine::PowerPlane::kDram);
    default:
      throw std::out_of_range("SimulatedMsrDevice: unmapped MSR 0x" +
                              std::to_string(addr));
  }
}

std::uint32_t SimulatedMsrDevice::energy_status_raw(
    machine::PowerPlane plane) const {
  std::lock_guard lock(mutex_);
  const double counts = joules_[plane_index(plane)] / joules_per_count_;
  const auto wide = static_cast<std::uint64_t>(std::floor(counts));
  return static_cast<std::uint32_t>(wide % kWrap);
}

void SimulatedMsrDevice::write(std::uint32_t addr, std::uint64_t value) {
  if (addr != kMsrPkgPowerLimit) {
    throw std::out_of_range("SimulatedMsrDevice: register not writable");
  }
  std::lock_guard lock(mutex_);
  power_limit_raw_ = value;
}

namespace {
// MSR_PKG_POWER_LIMIT PL1 layout: [14:0] power in 1/2^PU W (PU = 3
// here), [15] enable.
constexpr std::uint64_t kPl1Mask = 0x7FFF;
constexpr std::uint64_t kPl1Enable = 1ull << 15;
constexpr double kWattsPerUnit = 0.125;  // PU = 3
}  // namespace

void SimulatedMsrDevice::set_package_power_limit(double watts) {
  if (watts <= 0.0) {
    write(kMsrPkgPowerLimit, 0);
    return;
  }
  const auto units = static_cast<std::uint64_t>(watts / kWattsPerUnit);
  write(kMsrPkgPowerLimit, (units & kPl1Mask) | kPl1Enable);
}

double SimulatedMsrDevice::package_power_limit_w() const {
  const std::uint64_t raw = read(kMsrPkgPowerLimit);
  if ((raw & kPl1Enable) == 0) return -1.0;
  return static_cast<double>(raw & kPl1Mask) * kWattsPerUnit;
}

void SimulatedMsrDevice::deposit(machine::PowerPlane plane, double joules) {
  if (joules < 0.0) {
    throw std::invalid_argument("SimulatedMsrDevice: negative deposit");
  }
  std::lock_guard lock(mutex_);
  joules_[plane_index(plane)] += joules;
}

double SimulatedMsrDevice::total_joules(machine::PowerPlane plane) const {
  std::lock_guard lock(mutex_);
  return joules_[plane_index(plane)];
}

void SimulatedMsrDevice::reset() {
  std::lock_guard lock(mutex_);
  for (auto& j : joules_) j = 0.0;
}

RaplReader::RaplReader(const SimulatedMsrDevice& dev)
    : dev_(&dev), unit_j_(dev.joules_per_count()) {
  reset();
}

void RaplReader::reset() {
  for (std::size_t i = 0; i < machine::kPowerPlaneCount; ++i) {
    last_raw_[i] = read_raw(static_cast<machine::PowerPlane>(i));
    accumulated_j_[i] = 0.0;
  }
}

std::uint32_t RaplReader::read_raw(machine::PowerPlane plane) const {
  switch (plane) {
    case machine::PowerPlane::kPackage:
      return static_cast<std::uint32_t>(dev_->read(kMsrPkgEnergyStatus));
    case machine::PowerPlane::kPP0:
      return static_cast<std::uint32_t>(dev_->read(kMsrPp0EnergyStatus));
    case machine::PowerPlane::kDram:
      return static_cast<std::uint32_t>(dev_->read(kMsrDramEnergyStatus));
  }
  throw std::invalid_argument("RaplReader: bad plane");
}

double RaplReader::energy_joules(machine::PowerPlane plane) {
  const std::size_t i = static_cast<std::size_t>(plane);
  const std::uint32_t now = read_raw(plane);
  // Unsigned subtraction folds a single wrap automatically.
  const std::uint32_t delta = now - last_raw_[i];
  last_raw_[i] = now;
  accumulated_j_[i] += static_cast<double>(delta) * unit_j_;
  return accumulated_j_[i];
}

}  // namespace capow::rapl
