#include "capow/rapl/msr.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "capow/fault/fault.hpp"

namespace capow::rapl {

namespace {

constexpr std::uint64_t kWrap = 1ull << 32;

std::size_t plane_index(machine::PowerPlane p) {
  return static_cast<std::size_t>(p);
}

/// Draws the injected-EIO decision for one energy-status read.
void maybe_inject_read_failure(std::uint32_t addr) {
  fault::FaultInjector* inj = fault::FaultInjector::active();
  if (inj == nullptr) return;
  if (!inj->fire_next(fault::Site::kRaplFail)) return;
  inj->record(fault::Event::kRaplReadFailure);
  throw TransientReadError("msr: transient EIO reading MSR 0x" +
                           std::to_string(addr));
}

}  // namespace

SimulatedMsrDevice::SimulatedMsrDevice(unsigned energy_status_unit)
    : esu_(energy_status_unit),
      joules_per_count_(1.0 / static_cast<double>(1ull << esu_)) {
  if (esu_ > 31) {
    throw std::invalid_argument("SimulatedMsrDevice: ESU out of range");
  }
}

std::uint64_t SimulatedMsrDevice::read(std::uint32_t addr) const {
  switch (addr) {
    case kMsrRaplPowerUnit: {
      // [3:0] power units (1/2^PU W), [12:8] energy status units,
      // [19:16] time units. We encode PU=3 (1/8 W) and TU=10 like
      // Haswell parts; only ESU matters to energy clients.
      const std::uint64_t pu = 3;
      const std::uint64_t tu = 10;
      return pu | (static_cast<std::uint64_t>(esu_) << 8) | (tu << 16);
    }
    case kMsrPkgPowerLimit: {
      std::lock_guard lock(mutex_);
      return power_limit_raw_;
    }
    case kMsrPkgEnergyStatus:
      maybe_inject_read_failure(addr);
      return energy_status_raw(machine::PowerPlane::kPackage);
    case kMsrPp0EnergyStatus:
      maybe_inject_read_failure(addr);
      return energy_status_raw(machine::PowerPlane::kPP0);
    case kMsrDramEnergyStatus:
      maybe_inject_read_failure(addr);
      return energy_status_raw(machine::PowerPlane::kDram);
    default:
      throw std::out_of_range("SimulatedMsrDevice: unmapped MSR 0x" +
                              std::to_string(addr));
  }
}

std::uint32_t SimulatedMsrDevice::energy_status_raw(
    machine::PowerPlane plane) const {
  std::lock_guard lock(mutex_);
  const double counts = joules_[plane_index(plane)] / joules_per_count_;
  const auto wide = static_cast<std::uint64_t>(std::floor(counts));
  return static_cast<std::uint32_t>(wide % kWrap);
}

void SimulatedMsrDevice::write(std::uint32_t addr, std::uint64_t value) {
  if (addr != kMsrPkgPowerLimit) {
    throw std::out_of_range("SimulatedMsrDevice: register not writable");
  }
  std::lock_guard lock(mutex_);
  power_limit_raw_ = value;
}

namespace {
// MSR_PKG_POWER_LIMIT PL1 layout: [14:0] power in 1/2^PU W (PU = 3
// here), [15] enable.
constexpr std::uint64_t kPl1Mask = 0x7FFF;
constexpr std::uint64_t kPl1Enable = 1ull << 15;
constexpr double kWattsPerUnit = 0.125;  // PU = 3
}  // namespace

void SimulatedMsrDevice::set_package_power_limit(double watts) {
  if (watts <= 0.0) {
    write(kMsrPkgPowerLimit, 0);
    return;
  }
  const auto units = static_cast<std::uint64_t>(watts / kWattsPerUnit);
  write(kMsrPkgPowerLimit, (units & kPl1Mask) | kPl1Enable);
}

double SimulatedMsrDevice::package_power_limit_w() const {
  const std::uint64_t raw = read(kMsrPkgPowerLimit);
  if ((raw & kPl1Enable) == 0) return -1.0;
  return static_cast<double>(raw & kPl1Mask) * kWattsPerUnit;
}

void SimulatedMsrDevice::deposit(machine::PowerPlane plane, double joules) {
  if (joules < 0.0) {
    throw std::invalid_argument("SimulatedMsrDevice: negative deposit");
  }
  std::lock_guard lock(mutex_);
  joules_[plane_index(plane)] += joules;
}

double SimulatedMsrDevice::total_joules(machine::PowerPlane plane) const {
  std::lock_guard lock(mutex_);
  return joules_[plane_index(plane)];
}

void SimulatedMsrDevice::reset() {
  std::lock_guard lock(mutex_);
  for (auto& j : joules_) j = 0.0;
}

RaplReader::RaplReader(const SimulatedMsrDevice& dev)
    : dev_(&dev), unit_j_(dev.joules_per_count()) {
  reset();
}

void RaplReader::reset() {
  degraded_ = false;
  wraps_ = 0;
  retries_ = 0;
  for (std::size_t i = 0; i < machine::kPowerPlaneCount; ++i) {
    accumulated_j_[i] = 0.0;
    std::uint32_t raw = 0;
    if (try_read_raw(static_cast<machine::PowerPlane>(i), raw)) {
      last_raw_[i] = raw;
      based_[i] = true;
    } else {
      // Baseline unavailable: the plane re-bases itself on its first
      // successful energy_joules() read.
      based_[i] = false;
    }
  }
}

std::uint32_t RaplReader::read_raw(machine::PowerPlane plane) const {
  switch (plane) {
    case machine::PowerPlane::kPackage:
      return static_cast<std::uint32_t>(dev_->read(kMsrPkgEnergyStatus));
    case machine::PowerPlane::kPP0:
      return static_cast<std::uint32_t>(dev_->read(kMsrPp0EnergyStatus));
    case machine::PowerPlane::kDram:
      return static_cast<std::uint32_t>(dev_->read(kMsrDramEnergyStatus));
  }
  throw std::invalid_argument("RaplReader: bad plane");
}

bool RaplReader::try_read_raw(machine::PowerPlane plane, std::uint32_t& out) {
  for (int attempt = 0; attempt <= kRaplReadRetries; ++attempt) {
    try {
      out = read_raw(plane);
      return true;
    } catch (const TransientReadError&) {
      if (attempt < kRaplReadRetries) {
        ++retries_;
        if (auto* inj = fault::FaultInjector::active()) {
          inj->record(fault::Event::kRaplRetry);
        }
      }
    }
  }
  degraded_ = true;
  if (auto* inj = fault::FaultInjector::active()) {
    inj->record(fault::Event::kRaplDegradedRead);
  }
  return false;
}

double RaplReader::energy_joules(machine::PowerPlane plane) {
  const std::size_t i = static_cast<std::size_t>(plane);
  std::uint32_t now = 0;
  if (!try_read_raw(plane, now)) {
    // Persistent failure: serve the last known value. The counter is
    // cumulative, so the next good read recovers the missed delta.
    return accumulated_j_[i];
  }
  if (!based_[i]) {
    // First successful read after a failed baseline latch: re-base.
    last_raw_[i] = now;
    based_[i] = true;
    return accumulated_j_[i];
  }
  // Unsigned subtraction folds a single wrap automatically.
  if (now < last_raw_[i]) {
    ++wraps_;
    if (auto* inj = fault::FaultInjector::active()) {
      inj->record(fault::Event::kRaplWrap);
    }
  }
  const std::uint32_t delta = now - last_raw_[i];
  last_raw_[i] = now;
  accumulated_j_[i] += static_cast<double>(delta) * unit_j_;
  return accumulated_j_[i];
}

}  // namespace capow::rapl
