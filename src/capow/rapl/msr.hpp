// capow::rapl — simulated Intel RAPL (Running Average Power Limit).
//
// The paper reads processor energy through PAPI's rapl component, which
// ultimately reads model-specific registers (MSRs) exported via
// /dev/cpu/*/msr. That hardware path is unavailable here, so we model it
// faithfully one layer down: a register file with the real MSR addresses,
// unit-register encoding, and 32-bit wrapping energy-status counters.
// The execution simulator deposits joules into the device; measurement
// clients (RaplReader, the PAPI-like EventSet) read registers exactly the
// way a real RAPL client does — including handling counter wraparound.
#pragma once

#include <cstdint>
#include <mutex>
#include <stdexcept>

#include "capow/machine/machine.hpp"

namespace capow::rapl {

/// Transient MSR read failure — the simulated analogue of the EIO a
/// real /dev/cpu/N/msr read intermittently returns. Injected via
/// fault::Site::kRaplFail; clients (RaplReader) retry and degrade
/// rather than crash a measurement run.
class TransientReadError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Architectural MSR addresses (Intel SDM vol. 4).
inline constexpr std::uint32_t kMsrRaplPowerUnit = 0x606;
inline constexpr std::uint32_t kMsrPkgPowerLimit = 0x610;
inline constexpr std::uint32_t kMsrPkgEnergyStatus = 0x611;
inline constexpr std::uint32_t kMsrDramEnergyStatus = 0x619;
inline constexpr std::uint32_t kMsrPp0EnergyStatus = 0x639;

/// Simulated per-socket MSR device.
///
/// Energy is deposited in joules (by the execution simulator's energy
/// integrator) and surfaced through ENERGY_STATUS registers as 32-bit
/// counters in units of 1/2^ESU joules, wrapping modulo 2^32 exactly
/// like the hardware counters (which wrap roughly hourly at desktop
/// power draws; our simulated experiments exercise the wrap in tests).
class SimulatedMsrDevice {
 public:
  /// `energy_status_unit` is the ESU field of MSR_RAPL_POWER_UNIT;
  /// the Haswell default is 14 (61 microjoule resolution).
  explicit SimulatedMsrDevice(unsigned energy_status_unit = 14);

  /// Reads a register; throws std::out_of_range for unmapped addresses
  /// (mirroring the EIO a real /dev/cpu/N/msr read would produce).
  /// Energy-status reads can additionally throw TransientReadError when
  /// an installed fault::FaultInjector fires rapl.fail for this read.
  std::uint64_t read(std::uint32_t addr) const;

  /// Writes a register. Only MSR_PKG_POWER_LIMIT is writable (energy
  /// counters are read-only in hardware too); other addresses throw
  /// std::out_of_range.
  void write(std::uint32_t addr, std::uint64_t value);

  /// Convenience: encodes `watts` into the PL1 field of
  /// MSR_PKG_POWER_LIMIT (1/8 W units, enable bit set). Non-positive
  /// watts clears the limit.
  void set_package_power_limit(double watts);

  /// Decoded PL1 limit in watts, or a negative value when capping is
  /// disabled.
  double package_power_limit_w() const;

  /// Adds `joules` of energy to a plane's accumulator. Negative deposits
  /// are rejected (std::invalid_argument): energy is monotone.
  void deposit(machine::PowerPlane plane, double joules);

  /// Ground-truth accumulated energy (not wrapped); used by tests to
  /// validate reader wrap handling.
  double total_joules(machine::PowerPlane plane) const;

  /// Joules represented by one count of the energy-status counters.
  double joules_per_count() const noexcept { return joules_per_count_; }

  /// Resets all accumulators to zero.
  void reset();

 private:
  std::uint32_t energy_status_raw(machine::PowerPlane plane) const;

  unsigned esu_;
  double joules_per_count_;
  mutable std::mutex mutex_;
  double joules_[machine::kPowerPlaneCount] = {0.0, 0.0, 0.0};
  std::uint64_t power_limit_raw_ = 0;
};

/// Bounded retry budget for one logical RAPL read (1 initial attempt +
/// kRaplReadRetries retries) before the reader degrades.
inline constexpr int kRaplReadRetries = 3;

/// Client-side RAPL reader: converts ENERGY_STATUS deltas to joules,
/// correcting 32-bit wraparound (assumes it is polled at least once per
/// wrap period, as PAPI does).
///
/// Reads are fault tolerant: a TransientReadError is retried up to
/// kRaplReadRetries times; when every attempt fails the reader marks
/// itself degraded() and serves the last accumulated value instead of
/// throwing. Because the counters are cumulative, the next successful
/// read recovers the full energy delta — a degraded read loses
/// *timeliness*, never *energy*.
class RaplReader {
 public:
  explicit RaplReader(const SimulatedMsrDevice& dev);

  /// Re-bases all planes to the device's current counters and clears
  /// the degraded flag. Tolerates read failures: a plane whose baseline
  /// could not be latched re-bases itself on its next successful read.
  void reset();

  /// Joules accumulated on `plane` since construction/reset().
  /// Each call folds in any counter movement since the previous call.
  /// Never throws on transient device failures (see class comment).
  double energy_joules(machine::PowerPlane plane);

  /// True once any read (or reset) exhausted its retry budget since the
  /// last reset(). Results are still usable but may lag the device.
  bool degraded() const noexcept { return degraded_; }

  /// 32-bit counter wraps folded into deltas since construction/reset.
  std::uint64_t wraps() const noexcept { return wraps_; }

  /// Transient-failure retries performed since construction/reset —
  /// the measurement-health signal one step before degraded(): a
  /// nonzero retry count with degraded() still false means the retry
  /// budget absorbed every fault.
  std::uint64_t retries() const noexcept { return retries_; }

 private:
  std::uint32_t read_raw(machine::PowerPlane plane) const;
  /// Retrying read; false when the retry budget is exhausted.
  bool try_read_raw(machine::PowerPlane plane, std::uint32_t& out);

  const SimulatedMsrDevice* dev_;
  double unit_j_;
  bool degraded_ = false;
  std::uint64_t wraps_ = 0;
  std::uint64_t retries_ = 0;
  std::uint32_t last_raw_[machine::kPowerPlaneCount] = {0, 0, 0};
  /// False until the plane's baseline counter has been latched; a plane
  /// whose reset() read failed re-bases on its first successful read so
  /// a garbage baseline can never produce a bogus 4-gigacount delta.
  bool based_[machine::kPowerPlaneCount] = {false, false, false};
  double accumulated_j_[machine::kPowerPlaneCount] = {0.0, 0.0, 0.0};
};

}  // namespace capow::rapl
