// PAPI-style component interface over the simulated RAPL device.
//
// The paper's test driver embeds PAPI configured "to read the values from
// the entire package and the primary power plane (PP0)". This header
// reproduces that client surface: named events
// ("rapl:::PACKAGE_ENERGY:PACKAGE0", ...), an EventSet with
// start/stop/read semantics, and values reported in nanojoules exactly as
// PAPI's rapl component reports them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "capow/rapl/msr.hpp"

namespace capow::rapl {

/// Canonical PAPI rapl event names for socket 0.
inline constexpr const char* kEventPackageEnergy =
    "rapl:::PACKAGE_ENERGY:PACKAGE0";
inline constexpr const char* kEventPp0Energy = "rapl:::PP0_ENERGY:PACKAGE0";
inline constexpr const char* kEventDramEnergy = "rapl:::DRAM_ENERGY:PACKAGE0";

/// Maps an event name to its power plane; throws std::invalid_argument
/// for unknown names.
machine::PowerPlane plane_for_event(const std::string& event_name);

/// PAPI-like event set bound to one simulated MSR device.
///
/// Lifecycle mirrors PAPI: add events while stopped, start() latches
/// baselines, read() reports nanojoules accumulated since start() in
/// event-addition order, stop() freezes the values.
class EventSet {
 public:
  explicit EventSet(const SimulatedMsrDevice& dev);

  /// Registers an event; returns its index in read() results.
  /// Throws std::logic_error when called while running,
  /// std::invalid_argument for an unknown event name.
  std::size_t add_event(const std::string& name);

  /// Names in result order.
  const std::vector<std::string>& events() const noexcept { return names_; }

  /// Latches baselines and begins accumulation.
  /// Throws std::logic_error when already running or no events added.
  void start();

  /// Freezes values; returns the final reading (nanojoules per event).
  std::vector<long long> stop();

  /// Current accumulated nanojoules per event. Valid while running
  /// (live values) or after stop() (frozen values).
  std::vector<long long> read();

  bool running() const noexcept { return running_; }

  /// True when any read since start() had to serve a stale value after
  /// exhausting its retry budget (see RaplReader::degraded()). Cleared
  /// by start(). A degraded measurement is still energy-accurate up to
  /// the last successful read; the harness downgrades the run's status
  /// rather than discarding it.
  bool degraded() const noexcept { return reader_.degraded(); }

  /// Counter wraps the underlying reader folded since start().
  std::uint64_t wraps() const noexcept { return reader_.wraps(); }

  /// Transient-failure retries the underlying reader absorbed since
  /// start() (see RaplReader::retries()).
  std::uint64_t retries() const noexcept { return reader_.retries(); }

 private:
  const SimulatedMsrDevice* dev_;
  RaplReader reader_;
  std::vector<std::string> names_;
  std::vector<machine::PowerPlane> planes_;
  std::vector<long long> frozen_nj_;
  bool running_ = false;
};

}  // namespace capow::rapl
