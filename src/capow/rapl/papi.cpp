#include "capow/rapl/papi.hpp"

#include <cmath>
#include <stdexcept>

namespace capow::rapl {

machine::PowerPlane plane_for_event(const std::string& event_name) {
  if (event_name == kEventPackageEnergy) {
    return machine::PowerPlane::kPackage;
  }
  if (event_name == kEventPp0Energy) return machine::PowerPlane::kPP0;
  if (event_name == kEventDramEnergy) return machine::PowerPlane::kDram;
  throw std::invalid_argument("unknown rapl event: " + event_name);
}

EventSet::EventSet(const SimulatedMsrDevice& dev)
    : dev_(&dev), reader_(dev) {}

std::size_t EventSet::add_event(const std::string& name) {
  if (running_) {
    throw std::logic_error("EventSet: cannot add events while running");
  }
  planes_.push_back(plane_for_event(name));  // validates first
  names_.push_back(name);
  return names_.size() - 1;
}

void EventSet::start() {
  if (running_) throw std::logic_error("EventSet: already running");
  if (names_.empty()) throw std::logic_error("EventSet: no events added");
  reader_.reset();
  frozen_nj_.assign(names_.size(), 0);
  running_ = true;
}

std::vector<long long> EventSet::read() {
  if (!running_) return frozen_nj_;
  std::vector<long long> out(names_.size());
  for (std::size_t i = 0; i < planes_.size(); ++i) {
    const double joules = reader_.energy_joules(planes_[i]);
    out[i] = static_cast<long long>(std::llround(joules * 1e9));
  }
  return out;
}

std::vector<long long> EventSet::stop() {
  if (!running_) throw std::logic_error("EventSet: not running");
  frozen_nj_ = read();
  running_ = false;
  return frozen_nj_;
}

}  // namespace capow::rapl
