#include "capow/api/matmul.hpp"

#include <stdexcept>
#include <string>

#include "capow/blas/blocked_gemm.hpp"
#include "capow/telemetry/telemetry.hpp"

namespace capow {

namespace {

/// Strassen/CAPS base-kernel resolution: facade override, then the
/// algorithm option, then the CAPOW_KERNEL environment (a whole-stack
/// A/B switch), then the BOTS kernel (null).
std::optional<blas::MicroKernelId> resolve_base_kernel(
    std::optional<blas::MicroKernelId> facade,
    std::optional<blas::MicroKernelId> algorithm_option) {
  if (facade) return facade;
  if (algorithm_option) return algorithm_option;
  return blas::env_kernel_override();
}

blas::GemmOptions gemm_options(const MatmulOptions& opts) {
  blas::GemmOptions g;
  g.blocking = opts.blocking;
  g.kernel = opts.kernel;
  g.machine = opts.machine;
  g.arena = opts.arena;
  g.pool = opts.pool;
  return g;
}

std::string tile_str(std::size_t mr, std::size_t nr) {
  return std::to_string(mr) + "x" + std::to_string(nr);
}

/// "generic=4x4, avx2=4x8, fma=6x8" — every registered kernel with the
/// register tile that selects it, for validation error messages.
std::string kernel_tile_listing() {
  std::string s;
  for (const blas::MicroKernel& k : blas::kernel_registry()) {
    if (!s.empty()) s += ", ";
    s += k.name;
    s += "=";
    s += tile_str(k.mr, k.nr);
  }
  return s;
}

}  // namespace

void validate_options(const MatmulOptions& opts) {
  if (!opts.blocking) return;
  const blas::BlockingParams& bl = *opts.blocking;
  const blas::MicroKernel* pinned = blas::find_kernel_for_tile(bl.mr, bl.nr);
  if (pinned == nullptr) {
    throw std::invalid_argument(
        "matmul: blocking requests a " + tile_str(bl.mr, bl.nr) +
        " register tile, which matches no registered microkernel (valid "
        "kernel=tile combinations: " +
        kernel_tile_listing() + ")");
  }
  if (opts.kernel && *opts.kernel != pinned->id) {
    const blas::MicroKernel* requested = blas::find_kernel(*opts.kernel);
    throw std::invalid_argument(
        std::string("matmul: explicit kernel '") +
        (requested != nullptr ? requested->name : "?") +
        "' conflicts with the blocking parameters, whose " +
        tile_str(bl.mr, bl.nr) + " tile pins kernel '" + pinned->name +
        "' (valid kernel=tile combinations: " + kernel_tile_listing() + ")");
  }
}

const blas::MicroKernel* matmul_kernel(const MatmulOptions& opts) {
  validate_options(opts);
  switch (opts.algorithm) {
    case core::AlgorithmId::kOpenBlas:
      return &blas::resolve_kernel(gemm_options(opts));
    case core::AlgorithmId::kStrassen: {
      const auto id =
          resolve_base_kernel(opts.kernel, opts.strassen.base_kernel);
      return id ? blas::find_kernel(*id) : nullptr;
    }
    case core::AlgorithmId::kCaps: {
      const auto id = resolve_base_kernel(opts.kernel, opts.caps.base_kernel);
      return id ? blas::find_kernel(*id) : nullptr;
    }
  }
  return nullptr;
}

void matmul(linalg::ConstMatrixView a, linalg::ConstMatrixView b,
            linalg::MatrixView c, const MatmulOptions& opts) {
  validate_options(opts);

  // Fallback-aware device dispatch: explicit backend > CAPOW_BACKEND >
  // host. An op the requested device lacks runs on the host instead
  // (counted, never an error).
  const backend::DispatchDecision dispatch =
      backend::BackendRegistry::instance().dispatch(
          backend::resolve_backend(opts.backend), opts.algorithm);
  backend::Backend& device = *dispatch.chosen;

  // The deprecated explicit arena still wins over the device pool.
  blas::WorkspaceArena& arena =
      opts.arena != nullptr ? *opts.arena : device.arena();

  // Device guard: nested null-arena callers (recursion levels, ABFT
  // internals) lease from the dispatched device's memory, and telemetry
  // below the seam can ask which device it is on.
  backend::BackendScope device_guard(device);
  blas::ArenaScope arena_guard(arena);

  [[maybe_unused]] const blas::MicroKernel* kern = matmul_kernel(opts);
  // Span args: the resolved kernel id (-1 = BOTS base kernel), the
  // algorithm id and the dispatched backend id, so trace consumers can
  // attribute each multiply to the device that ran it.
  CAPOW_TSPAN_ARGS3("matmul", "api", "algorithm",
                    static_cast<int>(opts.algorithm), "kernel",
                    kern != nullptr ? static_cast<int>(kern->id) : -1,
                    "backend", static_cast<int>(device.id()));
#if CAPOW_TELEMETRY_ENABLED
  const blas::ArenaStats before = arena.stats();
#endif

  switch (opts.algorithm) {
    case core::AlgorithmId::kOpenBlas: {
      blas::GemmOptions g = gemm_options(opts);
      g.arena = &arena;
      // abft::guarded_gemm is the checksum wrapper for the blocked path
      // (it falls straight through to blas::gemm when the mode resolves
      // to off, so the default path is untouched).
      if (abft::resolve_mode(opts.abft) != abft::AbftMode::kOff) {
        abft::guarded_gemm(a, b, c, g, opts.abft);
      } else {
        blas::gemm(a, b, c, g);
      }
      break;
    }
    case core::AlgorithmId::kStrassen: {
      strassen::StrassenOptions s = opts.strassen;
      if (s.arena == nullptr) s.arena = &arena;
      s.base_kernel = resolve_base_kernel(opts.kernel, s.base_kernel);
      if (!s.abft.mode) s.abft = opts.abft;
      strassen::multiply(a, b, c, s, opts.pool);
      break;
    }
    case core::AlgorithmId::kCaps: {
      capsalg::CapsOptions o = opts.caps;
      if (o.arena == nullptr) o.arena = &arena;
      o.base_kernel = resolve_base_kernel(opts.kernel, o.base_kernel);
      if (!o.abft.mode) o.abft = opts.abft;
      capsalg::multiply(a, b, c, o, opts.pool, opts.caps_stats);
      break;
    }
  }

#if CAPOW_TELEMETRY_ENABLED
  const blas::ArenaStats after = arena.stats();
  CAPOW_TCOUNTER("matmul.arena.hits",
                 static_cast<double>(after.hits - before.hits));
  CAPOW_TCOUNTER("matmul.arena.misses",
                 static_cast<double>(after.misses - before.misses));
#endif
}

}  // namespace capow
