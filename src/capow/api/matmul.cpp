#include "capow/api/matmul.hpp"

#include "capow/telemetry/telemetry.hpp"

namespace capow {

namespace {

/// Strassen/CAPS base-kernel resolution: facade override, then the
/// algorithm option, then the CAPOW_KERNEL environment (a whole-stack
/// A/B switch), then the BOTS kernel (null).
std::optional<blas::MicroKernelId> resolve_base_kernel(
    std::optional<blas::MicroKernelId> facade,
    std::optional<blas::MicroKernelId> algorithm_option) {
  if (facade) return facade;
  if (algorithm_option) return algorithm_option;
  return blas::env_kernel_override();
}

blas::GemmOptions gemm_options(const MatmulOptions& opts) {
  blas::GemmOptions g;
  g.blocking = opts.blocking;
  g.kernel = opts.kernel;
  g.machine = opts.machine;
  g.arena = opts.arena;
  g.pool = opts.pool;
  return g;
}

}  // namespace

const blas::MicroKernel* matmul_kernel(const MatmulOptions& opts) {
  switch (opts.algorithm) {
    case core::AlgorithmId::kOpenBlas:
      return &blas::resolve_kernel(gemm_options(opts));
    case core::AlgorithmId::kStrassen: {
      const auto id =
          resolve_base_kernel(opts.kernel, opts.strassen.base_kernel);
      return id ? blas::find_kernel(*id) : nullptr;
    }
    case core::AlgorithmId::kCaps: {
      const auto id = resolve_base_kernel(opts.kernel, opts.caps.base_kernel);
      return id ? blas::find_kernel(*id) : nullptr;
    }
  }
  return nullptr;
}

void matmul(linalg::ConstMatrixView a, linalg::ConstMatrixView b,
            linalg::MatrixView c, const MatmulOptions& opts) {
  blas::WorkspaceArena& arena = opts.arena != nullptr
                                    ? *opts.arena
                                    : blas::WorkspaceArena::process_arena();
  [[maybe_unused]] const blas::MicroKernel* kern = matmul_kernel(opts);
  // Span args: the resolved kernel id (-1 = BOTS base kernel) and the
  // algorithm id, so trace consumers can attribute each multiply.
  CAPOW_TSPAN_ARGS2("matmul", "api", "algorithm",
                    static_cast<int>(opts.algorithm), "kernel",
                    kern != nullptr ? static_cast<int>(kern->id) : -1);
#if CAPOW_TELEMETRY_ENABLED
  const blas::ArenaStats before = arena.stats();
#endif

  switch (opts.algorithm) {
    case core::AlgorithmId::kOpenBlas:
      // abft::guarded_gemm is the checksum wrapper for the blocked path
      // (it falls straight through to blas::gemm when the mode resolves
      // to off, so the default path is untouched).
      if (abft::resolve_mode(opts.abft) != abft::AbftMode::kOff) {
        abft::guarded_gemm(a, b, c, gemm_options(opts), opts.abft);
      } else {
        blas::gemm(a, b, c, gemm_options(opts));
      }
      break;
    case core::AlgorithmId::kStrassen: {
      strassen::StrassenOptions s = opts.strassen;
      if (s.arena == nullptr) s.arena = &arena;
      s.base_kernel = resolve_base_kernel(opts.kernel, s.base_kernel);
      if (!s.abft.mode) s.abft = opts.abft;
      strassen::multiply(a, b, c, s, opts.pool);
      break;
    }
    case core::AlgorithmId::kCaps: {
      capsalg::CapsOptions o = opts.caps;
      if (o.arena == nullptr) o.arena = &arena;
      o.base_kernel = resolve_base_kernel(opts.kernel, o.base_kernel);
      if (!o.abft.mode) o.abft = opts.abft;
      capsalg::multiply(a, b, c, o, opts.pool, opts.caps_stats);
      break;
    }
  }

#if CAPOW_TELEMETRY_ENABLED
  const blas::ArenaStats after = arena.stats();
  CAPOW_TCOUNTER("matmul.arena.hits",
                 static_cast<double>(after.hits - before.hits));
  CAPOW_TCOUNTER("matmul.arena.misses",
                 static_cast<double>(after.misses - before.misses));
#endif
}

}  // namespace capow
