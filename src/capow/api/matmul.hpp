// capow::matmul() — the single entrypoint for the paper's three
// multiplication algorithms.
//
// Every call site (harness, benches, examples, tools) goes through this
// facade; the per-algorithm entrypoints are blas::gemm,
// strassen::multiply and capsalg::multiply (the PR-3 deprecated shims
// are gone). One options struct carries everything the paper's
// experiments vary: the algorithm (core::AlgorithmId registry), the
// *backend* the call dispatches onto (capow::backend seam — device
// identity, kernel registry, device arena, power plane), the register
// microkernel (explicit > CAPOW_KERNEL env > fastest supported),
// blocking/cutoff tuning, and the thread pool.
//
// The facade also owns the per-call observability: a "matmul" telemetry
// span tagged with the resolved algorithm/kernel/backend, plus arena
// hit/miss counter samples, so JSONL exports can attribute every
// measurement to the exact kernel variant, device and buffer-reuse
// behaviour that produced it.
#pragma once

#include <optional>

#include "capow/abft/abft.hpp"
#include "capow/backend/backend.hpp"
#include "capow/blas/blocking.hpp"
#include "capow/blas/microkernel.hpp"
#include "capow/blas/workspace.hpp"
#include "capow/capsalg/caps.hpp"
#include "capow/core/algorithms.hpp"
#include "capow/linalg/matrix.hpp"
#include "capow/machine/machine.hpp"
#include "capow/strassen/strassen.hpp"
#include "capow/tasking/thread_pool.hpp"

namespace capow {

/// Options for capow::matmul().
struct MatmulOptions {
  /// Which of the paper's algorithms runs (registry: core/algorithms.hpp).
  core::AlgorithmId algorithm = core::AlgorithmId::kOpenBlas;

  /// The device class to dispatch onto. Unset resolves through the
  /// CAPOW_BACKEND environment variable, then the host CPU. An op the
  /// chosen backend does not support falls back to the host (graceful,
  /// counted by capow_backend_fallbacks_total — never an error). The
  /// backend subsumes the `kernel`/`arena`/`machine` trio below: it
  /// supplies the kernel registry, the device memory pool and the
  /// machine model in one handle.
  std::optional<backend::BackendId> backend;

  /// DEPRECATED alias (subsumed by `backend`; one release of grace):
  /// register-microkernel override. Precedence, for every algorithm:
  /// this field > the per-algorithm option (blocking tile / base_kernel)
  /// > the CAPOW_KERNEL environment variable > the algorithm default
  /// (blocked GEMM: fastest supported; Strassen/CAPS: the BOTS-style
  /// base kernel the paper models).
  std::optional<blas::MicroKernelId> kernel;

  /// Worker pool; null runs serially.
  tasking::ThreadPool* pool = nullptr;

  /// DEPRECATED alias (subsumed by `backend`; one release of grace):
  /// explicit workspace pool for packed panels and recursion
  /// temporaries. Null leases from the dispatched backend's arena
  /// (host: blas::WorkspaceArena::process_arena(), unchanged).
  blas::WorkspaceArena* arena = nullptr;

  /// Blocked-GEMM path: explicit blocking parameters. The (mr, nr) tile
  /// must match a registered kernel, which it then pins.
  std::optional<blas::BlockingParams> blocking;
  /// DEPRECATED alias (subsumed by `backend`; one release of grace):
  /// choose blocked-GEMM blocking for this machine's caches. Null uses
  /// the dispatched backend's device spec where one is needed.
  std::optional<machine::MachineSpec> machine;

  /// Strassen path tuning (cutoff, winograd, spawn depth).
  strassen::StrassenOptions strassen{};
  /// CAPS path tuning (cutoffs, thresholds).
  capsalg::CapsOptions caps{};
  /// CAPS path: receives traversal statistics when non-null.
  capsalg::CapsStats* caps_stats = nullptr;

  /// ABFT protection, applied to whichever algorithm runs: off (default),
  /// detect (checksum-verify, throw abft::AbftError on silent
  /// corruption), or correct (localized recomputation, then bounded full
  /// retries). An unset mode defers to the CAPOW_ABFT environment
  /// variable (abft::resolve_mode).
  abft::AbftConfig abft{};
};

/// Rejects inconsistent options up front, before any dispatch work:
///   * a `blocking` tile whose (mr, nr) matches no registered kernel,
///   * an explicit `kernel` that disagrees with the tile `blocking` pins.
/// Throws std::invalid_argument whose message lists the registered
/// kernel/tile combinations. matmul() calls this on entry; experiment
/// drivers can call it early to fail before allocating operands.
void validate_options(const MatmulOptions& opts);

/// C = A * B via the selected algorithm on the resolved backend.
/// Validation, padding and instrumentation follow the selected
/// algorithm's contract; all three count logical traffic through
/// capow::trace identically to their closed-form cost models.
/// Arithmetic always executes with host kernels (results are
/// bit-identical across backends); the backend decides memory placement
/// and telemetry attribution.
void matmul(linalg::ConstMatrixView a, linalg::ConstMatrixView b,
            linalg::MatrixView c, const MatmulOptions& opts = {});

/// The microkernel matmul() would run for `opts` — the facade-level
/// resolution including per-algorithm defaults. Returns null when the
/// Strassen/CAPS base case would use the BOTS kernel. Throws exactly
/// when matmul() would reject the kernel/blocking combination.
const blas::MicroKernel* matmul_kernel(const MatmulOptions& opts);

}  // namespace capow
