// capow::matmul() — the single entrypoint for the paper's three
// multiplication algorithms.
//
// Every call site (harness, benches, examples, tools) goes through this
// facade; the per-algorithm entrypoints (blas::blocked_gemm,
// strassen::strassen_multiply, capsalg::caps_multiply) survive only as
// deprecated shims. One options struct carries everything the paper's
// experiments vary: the algorithm (core::AlgorithmId registry), the
// register microkernel (explicit > CAPOW_KERNEL env > fastest
// supported), blocking/cutoff tuning, the thread pool, and the
// workspace arena the hot paths lease their buffers from.
//
// The facade also owns the per-call observability: a "matmul" telemetry
// span tagged with the resolved algorithm/kernel, plus arena hit/miss
// counter samples, so JSONL exports can attribute every measurement to
// the exact kernel variant and buffer-reuse behaviour that produced it.
#pragma once

#include <optional>

#include "capow/abft/abft.hpp"
#include "capow/blas/blocked_gemm.hpp"
#include "capow/capsalg/caps.hpp"
#include "capow/core/algorithms.hpp"
#include "capow/linalg/matrix.hpp"
#include "capow/machine/machine.hpp"
#include "capow/strassen/strassen.hpp"
#include "capow/tasking/thread_pool.hpp"

namespace capow {

/// Options for capow::matmul().
struct MatmulOptions {
  /// Which of the paper's algorithms runs (registry: core/algorithms.hpp).
  core::AlgorithmId algorithm = core::AlgorithmId::kOpenBlas;

  /// Register-microkernel override. Precedence, for every algorithm:
  /// this field > the per-algorithm option (blocking tile / base_kernel)
  /// > the CAPOW_KERNEL environment variable > the algorithm default
  /// (blocked GEMM: fastest supported; Strassen/CAPS: the BOTS-style
  /// base kernel the paper models).
  std::optional<blas::MicroKernelId> kernel;

  /// Worker pool; null runs serially.
  tasking::ThreadPool* pool = nullptr;

  /// Workspace pool for packed panels and recursion temporaries; null
  /// uses blas::WorkspaceArena::process_arena().
  blas::WorkspaceArena* arena = nullptr;

  /// Blocked-GEMM path: explicit blocking parameters. The (mr, nr) tile
  /// must match a registered kernel, which it then pins.
  std::optional<blas::BlockingParams> blocking;
  /// Blocked-GEMM path: choose blocking for this machine's caches.
  std::optional<machine::MachineSpec> machine;

  /// Strassen path tuning (cutoff, winograd, spawn depth).
  strassen::StrassenOptions strassen{};
  /// CAPS path tuning (cutoffs, thresholds).
  capsalg::CapsOptions caps{};
  /// CAPS path: receives traversal statistics when non-null.
  capsalg::CapsStats* caps_stats = nullptr;

  /// ABFT protection, applied to whichever algorithm runs: off (default),
  /// detect (checksum-verify, throw abft::AbftError on silent
  /// corruption), or correct (localized recomputation, then bounded full
  /// retries). An unset mode defers to the CAPOW_ABFT environment
  /// variable (abft::resolve_mode).
  abft::AbftConfig abft{};
};

/// C = A * B via the selected algorithm. Validation, padding and
/// instrumentation follow the selected algorithm's contract; all three
/// count logical traffic through capow::trace identically to their
/// closed-form cost models.
void matmul(linalg::ConstMatrixView a, linalg::ConstMatrixView b,
            linalg::MatrixView c, const MatmulOptions& opts = {});

/// The microkernel matmul() would run for `opts` — the facade-level
/// resolution including per-algorithm defaults. Returns null when the
/// Strassen/CAPS base case would use the BOTS kernel. Throws exactly
/// when matmul() would reject the kernel/blocking combination.
const blas::MicroKernel* matmul_kernel(const MatmulOptions& opts);

}  // namespace capow
