#include "capow/machine/dvfs.hpp"

#include <stdexcept>

namespace capow::machine {

MachineSpec scale_frequency(MachineSpec spec, double factor) {
  if (factor < kMinFrequencyScale || factor > kMaxFrequencyScale) {
    throw std::invalid_argument(
        "scale_frequency: factor outside the P-state range");
  }
  const double p = factor * factor * factor;
  spec.core.frequency_hz *= factor;
  spec.core.busy_power_w *= p;
  spec.core.fma_power_w *= p;
  spec.core.stall_power_w *= p;
  spec.core.idle_power_w *= p;
  return spec;
}

double max_frequency_scale_under_cap(const MachineSpec& spec,
                                     double efficiency,
                                     double package_watts_cap,
                                     double overhead_watts) {
  if (efficiency <= 0.0 || efficiency > 1.0) {
    throw std::invalid_argument(
        "max_frequency_scale_under_cap: efficiency outside (0,1]");
  }
  if (overhead_watts < 0.0) {
    throw std::invalid_argument(
        "max_frequency_scale_under_cap: negative overhead");
  }
  for (int i = static_cast<int>(kMaxFrequencyScale * 100);
       i >= static_cast<int>(kMinFrequencyScale * 100); --i) {
    const double s = i / 100.0;
    const MachineSpec scaled = scale_frequency(spec, s);
    const double watts = scaled.power.pp0_static_w +
                         scaled.power.uncore_static_w + overhead_watts +
                         scaled.core_count *
                             scaled.core.active_power_w(efficiency);
    if (watts <= package_watts_cap) return s;
  }
  return 0.0;
}

}  // namespace capow::machine
