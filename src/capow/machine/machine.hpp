// capow::machine — parameterized SMP machine description.
//
// Substitute for the paper's physical test platform (Lenovo TS140,
// Intel E3-1225 "Haswell", 4 cores @ 3.2 GHz, 8 MB LLC, one DDR3-1600
// DIMM). The model captures exactly the quantities the paper's analysis
// depends on:
//   * peak per-core compute throughput (for roofline compute time),
//   * memory bandwidth (for roofline memory time; the quantity `z` in the
//     crossover equation Eq 9),
//   * cache capacities (used by the blocked-DGEMM blocking selection and
//     by the CAPS communication bound's M term in Eq 8),
//   * power coefficients per plane (static/uncore, per-core active and
//     stall power, DRAM energy-per-byte) from which the simulator derives
//     the PKG and PP0 RAPL planes.
//
// Power coefficients for the Haswell preset were calibrated so a
// compute-bound kernel's package power tracks the paper's OpenBLAS
// measurements (≈20 W at 1 thread to ≈49 W at 4, Table III); all other
// behaviours (Strassen/CAPS power saturation, EP scaling shapes) emerge
// from the roofline-with-contention model rather than per-algorithm
// tuning.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

namespace capow::machine {

/// One level of the cache hierarchy.
struct CacheLevelSpec {
  std::string name;            ///< "L1d", "L2", "L3"
  std::size_t capacity_bytes;  ///< per-core for private levels, total for shared
  bool shared;                 ///< true when shared by all cores (LLC)
  unsigned line_bytes;         ///< cache line size
  double energy_per_byte_nj;   ///< access energy, nanojoules per byte
};

/// Main-memory subsystem.
struct MemorySpec {
  double bandwidth_bytes_per_s;  ///< sustained streaming bandwidth
  double latency_s;              ///< idle access latency
  double energy_per_byte_nj;     ///< controller+DRAM I/O energy per byte
  std::size_t capacity_bytes;    ///< installed capacity
};

/// Per-core compute and power characteristics.
///
/// Dynamic power of one core is modeled as
///   P = (1-u)*stall_power_w + u*(busy_power_w + fma_power_w*efficiency)
/// where u is the non-memory-stalled fraction of time and `efficiency`
/// the fraction of the peak FP datapath the running kernel exercises.
/// This separation is what lets a low-efficiency kernel (e.g. the BOTS
/// Strassen base case) run busy yet draw far less power than a tuned
/// SIMD GEMM — the effect behind the paper's Figs 4-6.
struct CoreSpec {
  double frequency_hz;     ///< nominal core clock
  double flops_per_cycle;  ///< peak double-precision flops per cycle
  double busy_power_w;     ///< fetch/issue/LS power of a busy core (no FP)
  double fma_power_w;      ///< additional power at full FP-datapath use
  double stall_power_w;    ///< power of a memory-stalled core
  /// Power of an idle-but-clocking core. The paper disables the BIOS
  /// power-saving features, so unused cores never frequency-scale down;
  /// they keep drawing this floor while other cores work.
  double idle_power_w;

  /// Power of a core running a kernel of the given efficiency flat out.
  double active_power_w(double efficiency = 1.0) const noexcept {
    return busy_power_w + fma_power_w * efficiency;
  }
};

/// Static (always-on while measuring) power split between RAPL planes.
struct PowerSpec {
  double pp0_static_w;     ///< core-plane static/leakage power
  double uncore_static_w;  ///< package-minus-cores static power
};

/// RAPL-style power planes the simulator integrates energy into.
/// The paper reads PACKAGE and PP0; DRAM is modeled for the distributed
/// extension (interconnect/DIMM energy) and reported where available.
enum class PowerPlane { kPackage = 0, kPP0 = 1, kDram = 2 };
inline constexpr std::size_t kPowerPlaneCount = 3;

/// Human-readable plane name ("PACKAGE", "PP0", "DRAM").
const char* power_plane_name(PowerPlane p) noexcept;

/// Complete machine description.
struct MachineSpec {
  std::string name;
  unsigned core_count = 1;
  CoreSpec core{};
  std::vector<CacheLevelSpec> caches;  ///< ordered L1 -> LLC
  MemorySpec memory{};
  PowerSpec power{};
  double task_spawn_overhead_s = 2e-7;  ///< cost of creating one task
  double sync_overhead_s = 1e-6;        ///< cost of one barrier/join

  /// Peak double-precision throughput of one core (flops/s).
  double per_core_peak_flops() const noexcept {
    return core.frequency_hz * core.flops_per_cycle;
  }
  /// Peak throughput of the whole socket.
  double peak_flops() const noexcept {
    return per_core_peak_flops() * core_count;
  }
  /// Capacity of the last-level cache in bytes (0 when no caches).
  std::size_t llc_capacity_bytes() const noexcept {
    return caches.empty() ? 0 : caches.back().capacity_bytes;
  }
  /// Capacity of the given level (0-indexed from L1).
  std::size_t cache_capacity_bytes(std::size_t level) const;

  /// Machine balance in flops per DRAM byte — high values mean
  /// compute-rich/bandwidth-poor, the regime the paper's platform is in
  /// ("relatively high compute-to-memory ratio").
  double flops_per_byte() const noexcept {
    return peak_flops() / memory.bandwidth_bytes_per_s;
  }

  /// Throws std::invalid_argument when the spec is inconsistent
  /// (no cores, non-positive rates, unordered cache capacities, ...).
  void validate() const;
};

/// The paper's platform: Intel E3-1225 v3 (Haswell), 4 cores @ 3.2 GHz,
/// 32 KB L1d + 256 KB L2 per core, 8 MB shared LLC, one DDR3-1600 DIMM
/// (12.8 GB/s), power-saving features disabled (fixed frequency).
MachineSpec haswell_e3_1225();

/// A bandwidth-rich variant used by crossover/ablation studies: same
/// cores, 4x the memory bandwidth (quad-channel). Lowers the machine
/// balance, moving the Strassen crossover point (Eq 9) to smaller n.
MachineSpec haswell_quad_channel();

/// A small low-power core preset (2 cores, narrow SIMD) used in tests to
/// verify model behaviour is not tied to one calibration.
MachineSpec compact_dual_core();

/// Preset lookup by name ("haswell", "quad", "compact") — the registry
/// the CLI and scripts resolve against. Throws std::invalid_argument
/// for unknown names.
MachineSpec preset_by_name(const std::string& name);

/// Names accepted by preset_by_name.
std::vector<std::string> preset_names();

}  // namespace capow::machine
