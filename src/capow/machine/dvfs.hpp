// Dynamic voltage/frequency scaling over the machine model.
//
// The paper's Section II surveys DVFS and power capping as the
// *established* power-management levers and proposes algorithmic choice
// as a third axis. To compare the axes quantitatively we model the
// first one here: scaling core frequency by a factor s scales compute
// throughput by s and dynamic core power by ~s^3 (P ~ f V^2 with V
// tracking f in the DVFS operating range); static power and the memory
// subsystem are unaffected.
#pragma once

#include "capow/machine/machine.hpp"

namespace capow::machine {

/// Lowest/highest frequency multiplier the model accepts — the usual
/// P-state range of a desktop part relative to nominal.
inline constexpr double kMinFrequencyScale = 0.4;
inline constexpr double kMaxFrequencyScale = 1.2;

/// Returns `spec` with core frequency scaled by `factor` and dynamic
/// core powers (busy, FMA, stall, idle) scaled by factor^3.
/// Throws std::invalid_argument for factors outside the P-state range.
MachineSpec scale_frequency(MachineSpec spec, double factor);

/// Largest frequency scale (within the P-state range, 0.01 resolution)
/// at which an all-cores compute-bound kernel of the given efficiency
/// stays under `package_watts_cap`, after reserving `overhead_watts`
/// for non-core package consumers (memory controller, LLC traffic —
/// callers can measure these from an uncapped simulation). Returns 0
/// when even the lowest P-state exceeds the cap.
double max_frequency_scale_under_cap(const MachineSpec& spec,
                                     double efficiency,
                                     double package_watts_cap,
                                     double overhead_watts = 0.0);

}  // namespace capow::machine
