#include "capow/machine/machine.hpp"

namespace capow::machine {

const char* power_plane_name(PowerPlane p) noexcept {
  switch (p) {
    case PowerPlane::kPackage:
      return "PACKAGE";
    case PowerPlane::kPP0:
      return "PP0";
    case PowerPlane::kDram:
      return "DRAM";
  }
  return "?";
}

std::size_t MachineSpec::cache_capacity_bytes(std::size_t level) const {
  if (level >= caches.size()) return 0;
  return caches[level].capacity_bytes;
}

void MachineSpec::validate() const {
  if (core_count == 0) {
    throw std::invalid_argument("MachineSpec: core_count must be >= 1");
  }
  if (core.frequency_hz <= 0 || core.flops_per_cycle <= 0) {
    throw std::invalid_argument("MachineSpec: core throughput must be > 0");
  }
  if (core.busy_power_w < core.stall_power_w) {
    throw std::invalid_argument(
        "MachineSpec: busy power below stall power");
  }
  if (core.stall_power_w < 0 || core.fma_power_w < 0 ||
      core.idle_power_w < 0) {
    throw std::invalid_argument("MachineSpec: negative core power");
  }
  if (core.idle_power_w > core.stall_power_w) {
    throw std::invalid_argument(
        "MachineSpec: idle power above stall power");
  }
  if (memory.bandwidth_bytes_per_s <= 0) {
    throw std::invalid_argument("MachineSpec: memory bandwidth must be > 0");
  }
  if (memory.energy_per_byte_nj < 0 || power.pp0_static_w < 0 ||
      power.uncore_static_w < 0) {
    throw std::invalid_argument("MachineSpec: negative power coefficient");
  }
  for (std::size_t i = 0; i + 1 < caches.size(); ++i) {
    // Compare total capacity visible to one core so private-vs-shared
    // levels order sensibly.
    if (caches[i].capacity_bytes > caches[i + 1].capacity_bytes &&
        !caches[i + 1].shared) {
      throw std::invalid_argument(
          "MachineSpec: cache capacities must be non-decreasing");
    }
    if (caches[i].line_bytes == 0) {
      throw std::invalid_argument("MachineSpec: zero cache line size");
    }
  }
}

MachineSpec haswell_e3_1225() {
  MachineSpec m;
  m.name = "Intel E3-1225 v3 (Haswell), Lenovo TS140";
  m.core_count = 4;
  // 3.2 GHz, AVX2 + 2x FMA: 16 DP flops/cycle peak. Power split
  // calibrated so a kernel at ~0.42 efficiency (a Sandy Bridge-targeted
  // AVX build, which is what the paper's OpenBLAS configuration runs)
  // draws ~9.6 W/core, reproducing Table III's OpenBLAS column.
  m.core = CoreSpec{
      .frequency_hz = 3.2e9,
      .flops_per_cycle = 16.0,
      .busy_power_w = 4.5,
      .fma_power_w = 12.2,
      .stall_power_w = 2.4,
      .idle_power_w = 1.0,
  };
  // Access energies are per byte *transferred on chip* — an order of
  // magnitude below the DRAM figure (tens of pJ per 64 B line).
  m.caches = {
      CacheLevelSpec{"L1d", 32u * 1024, false, 64, 0.010},
      CacheLevelSpec{"L2", 256u * 1024, false, 64, 0.020},
      CacheLevelSpec{"L3", 8u * 1024 * 1024, true, 64, 0.050},
  };
  // One DDR3-1600 DIMM: 12.8 GB/s peak, ~80% sustainable.
  m.memory = MemorySpec{
      .bandwidth_bytes_per_s = 10.3e9,
      .latency_s = 80e-9,
      .energy_per_byte_nj = 0.55,
      .capacity_bytes = 4ull * 1024 * 1024 * 1024,
  };
  m.power = PowerSpec{.pp0_static_w = 2.6, .uncore_static_w = 7.4};
  return m;
}

MachineSpec haswell_quad_channel() {
  MachineSpec m = haswell_e3_1225();
  m.name = "Haswell (hypothetical quad-channel memory)";
  m.memory.bandwidth_bytes_per_s *= 4.0;
  m.memory.capacity_bytes *= 4;
  return m;
}

MachineSpec preset_by_name(const std::string& name) {
  if (name == "haswell") return haswell_e3_1225();
  if (name == "quad") return haswell_quad_channel();
  if (name == "compact") return compact_dual_core();
  throw std::invalid_argument("unknown machine preset '" + name +
                              "' (expected haswell|quad|compact)");
}

std::vector<std::string> preset_names() {
  return {"haswell", "quad", "compact"};
}

MachineSpec compact_dual_core() {
  MachineSpec m;
  m.name = "compact dual-core (low-power preset)";
  m.core_count = 2;
  m.core = CoreSpec{
      .frequency_hz = 1.6e9,
      .flops_per_cycle = 4.0,
      .busy_power_w = 1.0,
      .fma_power_w = 1.8,
      .stall_power_w = 0.6,
      .idle_power_w = 0.2,
  };
  m.caches = {
      CacheLevelSpec{"L1d", 32u * 1024, false, 64, 0.008},
      CacheLevelSpec{"L2", 1u * 1024 * 1024, true, 64, 0.025},
  };
  m.memory = MemorySpec{
      .bandwidth_bytes_per_s = 6.4e9,
      .latency_s = 100e-9,
      .energy_per_byte_nj = 0.40,
      .capacity_bytes = 2ull * 1024 * 1024 * 1024,
  };
  m.power = PowerSpec{.pp0_static_w = 0.8, .uncore_static_w = 1.7};
  return m;
}

}  // namespace capow::machine
