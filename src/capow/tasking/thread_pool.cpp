#include "capow/tasking/thread_pool.hpp"

#include <chrono>
#include <thread>
#include <utility>

#include "capow/fault/fault.hpp"
#include "capow/telemetry/telemetry.hpp"

namespace capow::tasking {

namespace {
thread_local int t_worker_index = -1;

/// Injected scheduling jitter: stall this task before it runs (models a
/// preempted/throttled worker). Applied at every execution point —
/// worker loop, inline submit, and helping steals — so the fault
/// schedule does not depend on who ends up running the task.
void maybe_stall_task() {
  fault::FaultInjector* inj = fault::FaultInjector::active();
  if (inj == nullptr) return;
  if (!inj->fire_next(fault::Site::kTaskStall)) return;
  inj->record(fault::Event::kTaskStall);
  CAPOW_TINSTANT("fault.task.stall", "tasking");
  std::this_thread::sleep_for(
      std::chrono::duration<double, std::milli>(inj->plan().task_stall_ms));
}
}  // namespace

ThreadPool::ThreadPool(unsigned workers) : workers_(workers) {
  threads_.reserve(workers_);
  for (unsigned i = 0; i < workers_; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  if (workers_ == 0) {
    CAPOW_TSPAN("task.run.inline", "tasking");
    maybe_stall_task();
    task();
    return;
  }
  CAPOW_TINSTANT("task.enqueue", "tasking");
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

bool ThreadPool::try_run_one() {
  std::function<void()> task;
  {
    std::lock_guard lock(mutex_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  // A non-worker (or a worker inside wait()) stealing queued work — the
  // helping scheduler in action; distinct span name so the timeline
  // shows who helped whom.
  CAPOW_TSPAN("task.run.help", "tasking");
  maybe_stall_task();
  task();
  return true;
}

int ThreadPool::worker_index() noexcept { return t_worker_index; }

void ThreadPool::worker_loop(unsigned index) {
  t_worker_index = static_cast<int>(index);
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        // stopping_ must be true here; drain-before-stop is guaranteed
        // because we only exit on an empty queue.
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    {
      CAPOW_TSPAN_ARGS1("task.run", "tasking", "worker", index);
      maybe_stall_task();
      task();
    }
  }
}

}  // namespace capow::tasking
