// parallel_for: OpenMP-style work sharing over an index range.
//
// CAPS's DFS levels parallelize the quadrant adds and base-case products
// via work sharing ("loops are parallelized such that threaded work
// sharing ... can be realized"); this is that primitive.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <memory>

#include "capow/tasking/task_group.hpp"
#include "capow/tasking/thread_pool.hpp"

namespace capow::tasking {

/// Chunking policy for parallel_for.
enum class Schedule {
  kStatic,   ///< contiguous near-equal chunks, one per worker
  kDynamic,  ///< grain-sized chunks claimed from a shared counter
};

/// Runs body(lo, hi) over disjoint sub-ranges covering [begin, end).
///
/// `grain` bounds the smallest chunk under dynamic scheduling and is the
/// minimum chunk under static scheduling. The calling thread participates
/// (it waits on the group, which helps execute). Exceptions propagate per
/// TaskGroup semantics.
template <typename Body>
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  Body&& body, std::size_t grain = 1,
                  Schedule schedule = Schedule::kStatic) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t workers = pool.concurrency();
  if (grain == 0) grain = 1;

  if (workers == 1 || n <= grain) {
    body(begin, end);
    return;
  }

  TaskGroup group(pool);
  if (schedule == Schedule::kStatic) {
    // ceil-divide into one chunk per worker, respecting the grain.
    const std::size_t chunks =
        std::min<std::size_t>(workers, (n + grain - 1) / grain);
    const std::size_t per = (n + chunks - 1) / chunks;
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t lo = begin + c * per;
      const std::size_t hi = std::min(lo + per, end);
      if (lo >= hi) break;
      group.run([&body, lo, hi] { body(lo, hi); });
    }
  } else {
    auto next = std::make_shared<std::atomic<std::size_t>>(begin);
    for (std::size_t w = 0; w < workers; ++w) {
      group.run([&body, next, end, grain] {
        for (;;) {
          const std::size_t lo =
              next->fetch_add(grain, std::memory_order_relaxed);
          if (lo >= end) return;
          body(lo, std::min(lo + grain, end));
        }
      });
    }
  }
  group.wait();
}

/// Element-wise convenience overload: body(i) per index.
template <typename Body>
void parallel_for_each(ThreadPool& pool, std::size_t begin, std::size_t end,
                       Body&& body, std::size_t grain = 1,
                       Schedule schedule = Schedule::kStatic) {
  parallel_for(
      pool, begin, end,
      [&body](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      },
      grain, schedule);
}

}  // namespace capow::tasking
