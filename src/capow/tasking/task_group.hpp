// TaskGroup: structured spawn/wait, the analogue of an OpenMP taskgroup.
#pragma once

#include <atomic>
#include <exception>
#include <functional>
#include <mutex>
#include <utility>

#include "capow/tasking/thread_pool.hpp"

namespace capow::tasking {

/// Tracks a set of spawned tasks and blocks until all complete.
///
/// Semantics mirror `#pragma omp taskgroup`:
///  - run() may be called from any thread, including from inside a task
///    belonging to this or another group (nested parallelism),
///  - wait() participates in execution ("helping"): while tasks are
///    outstanding the waiting thread pops and runs queued work, so a
///    1-worker pool still completes arbitrarily deep recursion,
///  - the first exception thrown by any task is captured and rethrown
///    from wait(); subsequent exceptions are dropped (matching
///    std::task_group-style semantics). Remaining tasks still run.
///  - cancellation is *cooperative*: cancel() (called explicitly, or
///    automatically when a task throws) raises a flag that long-running
///    or recursive tasks poll via cancelled() to cut useless work
///    short. Tasks that never poll are unaffected — spawned work always
///    runs, so non-polling code keeps its exact pre-cancellation
///    semantics.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool) noexcept : pool_(pool) {}

  /// wait() must have been called (and returned) before destruction if
  /// any task was spawned; enforced in debug builds.
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Spawns `fn` as a task in the pool.
  template <typename Fn>
  void run(Fn&& fn) {
    pending_.fetch_add(1, std::memory_order_acq_rel);
    pool_.submit([this, f = std::forward<Fn>(fn)]() mutable {
      try {
        f();
      } catch (...) {
        capture_exception(std::current_exception());
      }
      pending_.fetch_sub(1, std::memory_order_acq_rel);
    });
  }

  /// Blocks until every spawned task has finished, helping the pool run
  /// queued tasks meanwhile. Rethrows the first captured exception and
  /// clears the cancellation flag (the group is reusable afterwards).
  void wait();

  /// Requests cooperative cancellation of outstanding tasks.
  void cancel() noexcept { cancelled_.store(true, std::memory_order_release); }

  /// True once cancel() was called or a task threw. Poll from inside
  /// long-running/recursive tasks to skip work that can no longer
  /// contribute (its result would be discarded by the rethrow anyway).
  bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_acquire);
  }

  ThreadPool& pool() const noexcept { return pool_; }

  /// Number of tasks spawned but not yet finished (racy; for tests).
  std::size_t pending() const noexcept {
    return pending_.load(std::memory_order_acquire);
  }

 private:
  void capture_exception(std::exception_ptr e) noexcept;

  ThreadPool& pool_;
  std::atomic<std::size_t> pending_{0};
  std::atomic<bool> cancelled_{false};
  std::mutex exception_mutex_;
  std::exception_ptr first_exception_;
};

}  // namespace capow::tasking
