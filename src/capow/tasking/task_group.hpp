// TaskGroup: structured spawn/wait, the analogue of an OpenMP taskgroup.
#pragma once

#include <atomic>
#include <exception>
#include <functional>
#include <mutex>
#include <utility>

#include "capow/tasking/thread_pool.hpp"

namespace capow::tasking {

/// Tracks a set of spawned tasks and blocks until all complete.
///
/// Semantics mirror `#pragma omp taskgroup`:
///  - run() may be called from any thread, including from inside a task
///    belonging to this or another group (nested parallelism),
///  - wait() participates in execution ("helping"): while tasks are
///    outstanding the waiting thread pops and runs queued work, so a
///    1-worker pool still completes arbitrarily deep recursion,
///  - the first exception thrown by any task is captured and rethrown
///    from wait(); subsequent exceptions are dropped (matching
///    std::task_group-style semantics). Remaining tasks still run.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool) noexcept : pool_(pool) {}

  /// wait() must have been called (and returned) before destruction if
  /// any task was spawned; enforced in debug builds.
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Spawns `fn` as a task in the pool.
  template <typename Fn>
  void run(Fn&& fn) {
    pending_.fetch_add(1, std::memory_order_acq_rel);
    pool_.submit([this, f = std::forward<Fn>(fn)]() mutable {
      try {
        f();
      } catch (...) {
        capture_exception(std::current_exception());
      }
      pending_.fetch_sub(1, std::memory_order_acq_rel);
    });
  }

  /// Blocks until every spawned task has finished, helping the pool run
  /// queued tasks meanwhile. Rethrows the first captured exception.
  void wait();

  ThreadPool& pool() const noexcept { return pool_; }

  /// Number of tasks spawned but not yet finished (racy; for tests).
  std::size_t pending() const noexcept {
    return pending_.load(std::memory_order_acquire);
  }

 private:
  void capture_exception(std::exception_ptr e) noexcept;

  ThreadPool& pool_;
  std::atomic<std::size_t> pending_{0};
  std::mutex exception_mutex_;
  std::exception_ptr first_exception_;
};

}  // namespace capow::tasking
