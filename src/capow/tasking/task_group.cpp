#include "capow/tasking/task_group.hpp"

#include <cassert>
#include <thread>

#include "capow/telemetry/telemetry.hpp"

namespace capow::tasking {

TaskGroup::~TaskGroup() {
  assert(pending_.load(std::memory_order_acquire) == 0 &&
         "TaskGroup destroyed with outstanding tasks; call wait()");
}

void TaskGroup::wait() {
  CAPOW_TSPAN("taskgroup.wait", "tasking");
  while (pending_.load(std::memory_order_acquire) != 0) {
    if (!pool_.try_run_one()) {
      // Nothing to help with: our outstanding tasks are running on other
      // workers. Yield until they finish.
      std::this_thread::yield();
    }
  }
  std::exception_ptr e;
  {
    std::lock_guard lock(exception_mutex_);
    e = std::exchange(first_exception_, nullptr);
  }
  cancelled_.store(false, std::memory_order_release);
  if (e) std::rethrow_exception(e);
}

void TaskGroup::capture_exception(std::exception_ptr e) noexcept {
  // A failed task cancels its siblings (cooperatively): their results
  // would be discarded by wait()'s rethrow, so polling tasks can stop
  // burning cycles on them.
  cancelled_.store(true, std::memory_order_release);
  std::lock_guard lock(exception_mutex_);
  if (!first_exception_) first_exception_ = e;
}

}  // namespace capow::tasking
