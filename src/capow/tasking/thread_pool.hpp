// capow::tasking — a small OpenMP-task-like runtime.
//
// The paper's Strassen implementation (BOTS) uses untied OpenMP tasks and
// its CAPS implementation mixes tasking (BFS levels) with work sharing
// (DFS levels). This module provides the two primitives those map onto:
//
//   * ThreadPool + TaskGroup — spawn/wait with nested-task support
//     (waiting threads *help* execute queued tasks, so deep recursion
//     never deadlocks regardless of pool size), and
//   * parallel_for — static/dynamic work sharing over index ranges.
//
// The pool is deliberately simple (single mutex-protected queue): the
// algorithms layered on top spawn coarse tasks (quadrant products), so
// queue contention is negligible compared to task bodies, and simplicity
// keeps the semantics easy to test exhaustively.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace capow::tasking {

/// Fixed-size worker pool executing type-erased tasks.
///
/// `ThreadPool(0)` is a valid *inline* pool: submissions execute
/// immediately on the calling thread. This gives a deterministic serial
/// mode used by tests and by single-thread experiment configurations.
class ThreadPool {
 public:
  /// Spawns `workers` threads. 0 => inline execution mode.
  explicit ThreadPool(unsigned workers);

  /// Joins all workers; pending tasks are drained before shutdown.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (0 for an inline pool).
  unsigned worker_count() const noexcept { return workers_; }

  /// Degree of parallelism this pool represents: max(1, worker_count()).
  unsigned concurrency() const noexcept {
    return workers_ == 0 ? 1u : workers_;
  }

  /// Enqueues a task. On an inline pool the task runs before submit()
  /// returns.
  void submit(std::function<void()> task);

  /// Runs one queued task on the calling thread if any is available.
  /// Returns false when the queue was empty. Used by TaskGroup::wait()
  /// so that blocked parents help their children ("helping" scheduler).
  bool try_run_one();

  /// Index of the calling pool worker in [0, worker_count()), or -1 when
  /// called from a non-worker thread. Stable for the worker's lifetime;
  /// the trace module keys per-thread counters on it.
  static int worker_index() noexcept;

 private:
  void worker_loop(unsigned index);

  unsigned workers_;
  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace capow::tasking
