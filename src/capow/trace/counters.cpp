#include "capow/trace/counters.hpp"

#include <algorithm>
#include <atomic>

#include "capow/tasking/thread_pool.hpp"

namespace capow::trace {

CostCounters& CostCounters::operator+=(const CostCounters& o) noexcept {
  flops += o.flops;
  dram_read_bytes += o.dram_read_bytes;
  dram_write_bytes += o.dram_write_bytes;
  cache_bytes += o.cache_bytes;
  messages += o.messages;
  message_bytes += o.message_bytes;
  tasks_spawned += o.tasks_spawned;
  syncs += o.syncs;
  return *this;
}

void Recorder::reset() noexcept {
  for (auto& s : slots_) s.by_phase.fill(CostCounters{});
  {
    std::lock_guard lock(phase_mutex_);
    phase_names_.assign(1, std::string{});
  }
  active_phase_.store(0, std::memory_order_release);
}

std::size_t Recorder::begin_phase(const std::string& name) {
  std::lock_guard lock(phase_mutex_);
  for (std::size_t i = 0; i < phase_names_.size(); ++i) {
    if (phase_names_[i] == name) {
      active_phase_.store(i, std::memory_order_release);
      return i;
    }
  }
  if (phase_names_.size() >= kMaxPhases) {
    // Overflow: absorb into the default phase rather than fail.
    active_phase_.store(0, std::memory_order_release);
    return 0;
  }
  phase_names_.push_back(name);
  const std::size_t idx = phase_names_.size() - 1;
  active_phase_.store(idx, std::memory_order_release);
  return idx;
}

void Recorder::end_phase() noexcept {
  active_phase_.store(0, std::memory_order_release);
}

void Recorder::restore_phase(std::size_t phase) noexcept {
  active_phase_.store(phase < kMaxPhases ? phase : 0,
                      std::memory_order_release);
}

std::size_t Recorder::phase_count() const noexcept {
  std::lock_guard lock(phase_mutex_);
  return phase_names_.size();
}

const std::string& Recorder::phase_name(std::size_t i) const {
  std::lock_guard lock(phase_mutex_);
  return phase_names_.at(i);
}

const CostCounters& Recorder::cell(std::size_t slot,
                                   std::size_t phase) const {
  return slots_.at(slot).by_phase.at(phase);
}

CostCounters Recorder::phase_total(std::size_t phase) const {
  CostCounters t;
  for (const auto& s : slots_) t += s.by_phase.at(phase);
  return t;
}

std::vector<CostCounters> Recorder::phase_parallel_slots(
    std::size_t phase) const {
  std::vector<CostCounters> out;
  for (std::size_t i = 1; i < kMaxSlots; ++i) {
    const CostCounters& c = slots_[i].by_phase.at(phase);
    if (c != CostCounters{}) out.push_back(c);
  }
  return out;
}

namespace {
/// Parallel-unit slot claimed by ScopedRecorderSlot for non-worker
/// threads (-1 = none, i.e. the sequential slot 0).
thread_local int t_claimed_unit = -1;
}  // namespace

ScopedRecorderSlot::ScopedRecorderSlot(int unit) noexcept
    : previous_(t_claimed_unit) {
  t_claimed_unit = unit >= 0 ? unit : -1;
}

ScopedRecorderSlot::~ScopedRecorderSlot() { t_claimed_unit = previous_; }

std::size_t Recorder::slot_for_current_thread() noexcept {
  int w = tasking::ThreadPool::worker_index();
  if (w < 0) w = t_claimed_unit;
  const std::size_t slot = static_cast<std::size_t>(w + 1);
  return slot < kMaxSlots ? slot : kMaxSlots - 1;
}

void Recorder::add_flops(std::uint64_t n) noexcept {
  slots_[slot_for_current_thread()].active(active_phase()).flops += n;
}
void Recorder::add_dram_read(std::uint64_t bytes) noexcept {
  slots_[slot_for_current_thread()].active(active_phase()).dram_read_bytes +=
      bytes;
}
void Recorder::add_dram_write(std::uint64_t bytes) noexcept {
  slots_[slot_for_current_thread()]
      .active(active_phase())
      .dram_write_bytes += bytes;
}
void Recorder::add_cache_traffic(std::uint64_t bytes) noexcept {
  slots_[slot_for_current_thread()].active(active_phase()).cache_bytes +=
      bytes;
}
void Recorder::add_message(std::uint64_t bytes) noexcept {
  auto& c = slots_[slot_for_current_thread()].active(active_phase());
  c.messages += 1;
  c.message_bytes += bytes;
}
void Recorder::add_task_spawn(std::uint64_t n) noexcept {
  slots_[slot_for_current_thread()].active(active_phase()).tasks_spawned +=
      n;
}
void Recorder::add_sync(std::uint64_t n) noexcept {
  slots_[slot_for_current_thread()].active(active_phase()).syncs += n;
}

CostCounters Recorder::slot(std::size_t i) const noexcept {
  CostCounters t;
  for (const auto& c : slots_[i].by_phase) t += c;
  return t;
}

CostCounters Recorder::total() const noexcept {
  CostCounters t;
  for (std::size_t i = 0; i < kMaxSlots; ++i) t += slot(i);
  return t;
}

std::vector<CostCounters> Recorder::parallel_slots() const {
  std::vector<CostCounters> out;
  for (std::size_t i = 1; i < kMaxSlots; ++i) {
    const CostCounters c = slot(i);
    if (c != CostCounters{}) out.push_back(c);
  }
  return out;
}

std::uint64_t Recorder::max_parallel_flops() const noexcept {
  std::uint64_t m = 0;
  for (std::size_t i = 1; i < kMaxSlots; ++i) {
    m = std::max(m, slot(i).flops);
  }
  return m;
}

namespace {
// The active recorder is shared by all threads (workers record into their
// own slots), hence a single atomic global rather than a thread_local.
std::atomic<Recorder*> g_recorder{nullptr};
}  // namespace

RecordingScope::RecordingScope(Recorder& r) noexcept
    : previous_(g_recorder.exchange(&r, std::memory_order_acq_rel)) {}

RecordingScope::~RecordingScope() {
  g_recorder.store(previous_, std::memory_order_release);
}

Recorder* RecordingScope::current() noexcept {
  return g_recorder.load(std::memory_order_acquire);
}

void count_flops(std::uint64_t n) noexcept {
  if (Recorder* r = RecordingScope::current()) r->add_flops(n);
}
void count_dram_read(std::uint64_t bytes) noexcept {
  if (Recorder* r = RecordingScope::current()) r->add_dram_read(bytes);
}
void count_dram_write(std::uint64_t bytes) noexcept {
  if (Recorder* r = RecordingScope::current()) r->add_dram_write(bytes);
}
void count_cache_traffic(std::uint64_t bytes) noexcept {
  if (Recorder* r = RecordingScope::current()) r->add_cache_traffic(bytes);
}
void count_message(std::uint64_t bytes) noexcept {
  if (Recorder* r = RecordingScope::current()) r->add_message(bytes);
}
void count_task_spawn(std::uint64_t n) noexcept {
  if (Recorder* r = RecordingScope::current()) r->add_task_spawn(n);
}
void count_sync(std::uint64_t n) noexcept {
  if (Recorder* r = RecordingScope::current()) r->add_sync(n);
}

}  // namespace capow::trace
