// capow::trace — lightweight per-thread cost instrumentation.
//
// The paper measures power while the algorithms run; its claims rest on
// *why* the power differs: blocked DGEMM is compute-bound, the Strassen
// family streams far more O(n^2) addition traffic. To make that causal
// chain testable we instrument every algorithm with cost counters —
// flops executed, bytes moved to/from DRAM (as modeled by each kernel's
// traffic accounting), tasks spawned, synchronization points — recorded
// per worker thread so the EP model's max-over-parallel-units terms
// (Eq 2) can be evaluated exactly.
//
// Counters are plain (non-atomic) per-slot values padded to a cache line:
// each slot is only written by its owning thread, and merging happens
// after the parallel region completes.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "capow/telemetry/telemetry.hpp"

namespace capow::trace {

/// Aggregate cost counters for one execution unit (or a merged total).
struct CostCounters {
  std::uint64_t flops = 0;          ///< floating point operations executed
  std::uint64_t dram_read_bytes = 0;   ///< modeled DRAM read traffic
  std::uint64_t dram_write_bytes = 0;  ///< modeled DRAM write traffic
  std::uint64_t cache_bytes = 0;    ///< modeled cache-resident traffic
  std::uint64_t messages = 0;       ///< messages sent (distributed runs)
  std::uint64_t message_bytes = 0;  ///< message payload bytes
  std::uint64_t tasks_spawned = 0;  ///< tasks created
  std::uint64_t syncs = 0;          ///< barriers / waits encountered

  std::uint64_t dram_bytes() const noexcept {
    return dram_read_bytes + dram_write_bytes;
  }

  CostCounters& operator+=(const CostCounters& o) noexcept;
  friend CostCounters operator+(CostCounters a, const CostCounters& b) {
    a += b;
    return a;
  }
  bool operator==(const CostCounters&) const = default;
};

/// Records costs for up to kMaxSlots concurrent execution units,
/// optionally split across up to kMaxPhases named phases.
///
/// Slot assignment: pool worker i writes slot i+1; any non-worker thread
/// (the main/sequential thread) writes slot 0. This matches the EP
/// model's sequential-vs-parallel decomposition: slot 0 holds the
/// sequential component, slots 1..N the parallel units.
///
/// Phases: PhaseScope (below) switches the recorder's active phase;
/// counts land in (slot, phase) cells. Phase 0 is the implicit default.
/// Phase switching is a *global* section marker (all threads record into
/// the announced phase), matching how the algorithms stage their work —
/// a phase boundary is always a synchronization point.
class Recorder {
 public:
  static constexpr std::size_t kMaxSlots = 65;
  static constexpr std::size_t kMaxPhases = 32;

  Recorder() = default;

  /// Clears every slot and phase, resetting to the single default phase.
  void reset() noexcept;

  /// Declares/activates a named phase; returns its index. Re-announcing
  /// an existing name re-activates it (counts accumulate). Beyond
  /// kMaxPhases the default phase absorbs the overflow.
  std::size_t begin_phase(const std::string& name);

  /// Reverts to the default phase.
  void end_phase() noexcept;

  /// Index of the currently active phase (0 = default).
  std::size_t active_phase_index() const noexcept {
    return active_phase();
  }

  /// Re-activates a previously returned phase index (PhaseScope uses
  /// this to restore its parent on destruction, so nested scopes do not
  /// wipe out the enclosing phase). Out-of-range indices clamp to the
  /// default phase.
  void restore_phase(std::size_t phase) noexcept;

  /// Number of phases seen (>= 1; the default phase is always present).
  std::size_t phase_count() const noexcept;

  /// Name of phase i ("" for the default phase).
  const std::string& phase_name(std::size_t i) const;

  /// Counters of one (slot, phase) cell.
  const CostCounters& cell(std::size_t slot, std::size_t phase) const;

  /// Sum over slots for one phase.
  CostCounters phase_total(std::size_t phase) const;

  /// Per-phase parallel-slot breakdown (non-empty slots only).
  std::vector<CostCounters> phase_parallel_slots(std::size_t phase) const;

  // Recording entry points; `slot` resolution uses the calling thread's
  // pool worker index (see slot_for_current_thread()).
  void add_flops(std::uint64_t n) noexcept;
  void add_dram_read(std::uint64_t bytes) noexcept;
  void add_dram_write(std::uint64_t bytes) noexcept;
  void add_cache_traffic(std::uint64_t bytes) noexcept;
  void add_message(std::uint64_t bytes) noexcept;
  void add_task_spawn(std::uint64_t n = 1) noexcept;
  void add_sync(std::uint64_t n = 1) noexcept;

  /// Slot written by the calling thread (worker_index()+1, or 0).
  static std::size_t slot_for_current_thread() noexcept;

  /// Aggregate counters for one slot (0 = sequential/main thread),
  /// summed over phases.
  CostCounters slot(std::size_t i) const noexcept;

  /// Sum over all slots and phases.
  CostCounters total() const noexcept;

  /// Counters of the parallel slots (1..) that are non-empty.
  std::vector<CostCounters> parallel_slots() const;

  /// Max flops over parallel slots — the critical-path work term.
  std::uint64_t max_parallel_flops() const noexcept;

 private:
  struct alignas(64) Slot {
    std::array<CostCounters, kMaxPhases> by_phase;
    CostCounters& active(std::size_t phase) noexcept {
      return by_phase[phase];
    }
  };

  std::size_t active_phase() const noexcept {
    return active_phase_.load(std::memory_order_acquire);
  }

  std::array<Slot, kMaxSlots> slots_{};
  // Phase registry: written under mutex, names immutable once added.
  mutable std::mutex phase_mutex_;
  std::vector<std::string> phase_names_{std::string{}};
  std::atomic<std::size_t> active_phase_{0};
};

/// RAII parallel-unit slot claim for threads that are not pool workers.
/// Without it every such thread collapses into slot 0 (the sequential
/// slot), and concurrent non-worker threads — e.g. dist::World rank
/// threads — would race on its plain counters. Claiming `unit` routes
/// the calling thread's counts to parallel slot 1 + unit (clamped to
/// the last slot) for the scope lifetime, which is also the honest EP
/// decomposition: a rank thread is a parallel unit, not the sequential
/// component. Pool workers ignore the claim (their index wins).
class ScopedRecorderSlot {
 public:
  explicit ScopedRecorderSlot(int unit) noexcept;
  ~ScopedRecorderSlot();
  ScopedRecorderSlot(const ScopedRecorderSlot&) = delete;
  ScopedRecorderSlot& operator=(const ScopedRecorderSlot&) = delete;

 private:
  int previous_;
};

/// RAII phase section: activates `name` on construction and restores
/// the *previously active* phase on destruction, so nested scopes
/// resume their parent's phase instead of resetting to the default.
/// When a telemetry tracer is installed, the section is also emitted as
/// a timed span (category "phase"), aligning the cost counters with the
/// span timeline.
class PhaseScope {
 public:
  PhaseScope(Recorder& r, const std::string& name)
      : recorder_(&r),
        previous_(r.active_phase_index())
#if CAPOW_TELEMETRY_ENABLED
        ,
        span_(telemetry::Tracer::active() != nullptr
                  ? telemetry::intern(name)
                  : nullptr,
              "phase")
#endif
  {
    recorder_->begin_phase(name);
  }
  ~PhaseScope() { recorder_->restore_phase(previous_); }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  Recorder* recorder_;
  std::size_t previous_;
#if CAPOW_TELEMETRY_ENABLED
  telemetry::SpanScope span_;
#endif
};

/// Installs `r` as the calling thread's *and* subsequently-created
/// recordings' target for the scope lifetime. The active recorder is a
/// process-global (algorithms running under different recorders
/// concurrently should use distinct Recorder objects passed explicitly;
/// the global scope is a convenience for whole-experiment recording).
class RecordingScope {
 public:
  explicit RecordingScope(Recorder& r) noexcept;
  ~RecordingScope();
  RecordingScope(const RecordingScope&) = delete;
  RecordingScope& operator=(const RecordingScope&) = delete;

  /// Currently-installed recorder, or nullptr.
  static Recorder* current() noexcept;

 private:
  Recorder* previous_;
};

// Free-function recording against the current RecordingScope (no-ops when
// none is installed). These are what kernels call.
void count_flops(std::uint64_t n) noexcept;
void count_dram_read(std::uint64_t bytes) noexcept;
void count_dram_write(std::uint64_t bytes) noexcept;
void count_cache_traffic(std::uint64_t bytes) noexcept;
void count_message(std::uint64_t bytes) noexcept;
void count_task_spawn(std::uint64_t n = 1) noexcept;
void count_sync(std::uint64_t n = 1) noexcept;

}  // namespace capow::trace
