#include "capow/sparse/spmm.hpp"

#include <algorithm>
#include <stdexcept>

#include "capow/tasking/parallel_for.hpp"
#include "capow/trace/counters.hpp"

namespace capow::sparse {

void spmm(const CsrMatrix& a, linalg::ConstMatrixView b,
          linalg::MatrixView c, tasking::ThreadPool* pool) {
  if (b.rows() != a.cols || c.rows() != a.rows || c.cols() != b.cols()) {
    throw std::invalid_argument("spmm: dimension mismatch");
  }
  const std::size_t k = b.cols();
  const auto body = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t r = lo; r < hi; ++r) {
      double* crow = c.row(r);
      for (std::size_t j = 0; j < k; ++j) crow[j] = 0.0;
      for (std::uint32_t p = a.row_ptr[r]; p < a.row_ptr[r + 1]; ++p) {
        const double v = a.values[p];
        const double* brow = b.row(a.col_idx[p]);
        for (std::size_t j = 0; j < k; ++j) crow[j] += v * brow[j];
      }
    }
    const std::size_t span_nnz = a.row_ptr[hi] - a.row_ptr[lo];
    trace::count_flops(2 * span_nnz * k);
    // CSR streams + one k-wide B row gather per nonzero + C row writes.
    trace::count_dram_read(4 * (hi - lo) + 12 * span_nnz +
                           8 * span_nnz * k);
    trace::count_dram_write(8 * (hi - lo) * k);
  };
  if (pool != nullptr && pool->concurrency() > 1 && a.rows > 1) {
    tasking::parallel_for(*pool, 0, a.rows, body, 16);
    trace::count_sync();
  } else {
    body(0, a.rows);
  }
  trace::count_dram_read(4);  // row_ptr[0]
}

double spmm_flops(const SpmvShape& shape, std::size_t k) {
  return 2.0 * static_cast<double>(shape.nnz) * static_cast<double>(k);
}

double spmm_traffic_bytes(const SpmvShape& shape, std::size_t k) {
  const double rows = static_cast<double>(shape.rows);
  const double nnz = static_cast<double>(shape.nnz);
  const double kd = static_cast<double>(k);
  return 4.0 * rows + 12.0 * nnz + 8.0 * nnz * kd + 8.0 * rows * kd + 4.0;
}

sim::WorkProfile spmm_profile(const SpmvShape& shape, std::size_t k,
                              const machine::MachineSpec& spec,
                              unsigned threads, std::size_t iterations) {
  if (iterations == 0 || k == 0) {
    throw std::invalid_argument("spmm_profile: zero iterations or k");
  }
  const double iters = static_cast<double>(iterations);
  const double flops = spmm_flops(shape, k) * iters;
  const unsigned p = std::min(threads, spec.core_count);

  // Split the logical traffic: the CSR streams and C writes move once
  // per sweep; the per-nonzero B-row gathers hit the LLC whenever the
  // dense operand stays resident (8 * cols * k bytes against half the
  // LLC), in which case only B's compulsory read reaches DRAM.
  const double kd = static_cast<double>(k);
  const double rows = static_cast<double>(shape.rows);
  const double nnz = static_cast<double>(shape.nnz);
  const double stream_bytes =
      (4.0 * rows + 12.0 * nnz + 4.0 + 8.0 * rows * kd) * iters;
  const double gather_bytes = 8.0 * nnz * kd * iters;
  const double b_bytes = 8.0 * static_cast<double>(shape.cols) * kd;
  const bool b_resident =
      b_bytes <= static_cast<double>(spec.llc_capacity_bytes()) / 2.0;

  double dram_bytes;
  double cache_bytes;
  if (b_resident) {
    dram_bytes = stream_bytes + b_bytes * iters;
    cache_bytes = std::max(gather_bytes - b_bytes * iters, 0.0);
  } else {
    dram_bytes = stream_bytes + gather_bytes;
    cache_bytes = 0.0;
  }

  // Wider SpMM reuses each gathered B row across the k accumulators:
  // efficiency climbs from the SpMV gather floor toward a dense-kernel
  // ceiling (saturating at ~8-wide).
  const double eff = std::min(0.30, kSpmvEfficiency * (1.0 + 0.4 * (k - 1)));

  sim::WorkProfile wp;
  wp.name = "spmm-csr";
  wp.add(sim::PhaseCost{
      .label = wp.name,
      .flops = flops,
      .dram_bytes = dram_bytes,
      .cache_bytes = cache_bytes,
      .parallelism = p,
      .efficiency = eff,
      .sync_events = (p > 1) ? iterations : 0,
  });
  return wp;
}

}  // namespace capow::sparse
