// Sparse-times-dense matrix multiplication (SpMM): C = A_sparse * B.
//
// The paper's Section VIII names "sparse matrix multiplication
// techniques" alongside SpMV; SpMM is the kernel that generalizes the
// EP-scaling question to block workloads (multiple right-hand sides),
// where the dense operand's reuse changes the traffic balance: each
// stored nonzero now amortizes its index overhead over `k` columns.
#pragma once

#include "capow/linalg/matrix.hpp"
#include "capow/machine/machine.hpp"
#include "capow/sim/cost_profile.hpp"
#include "capow/sparse/cost_model.hpp"
#include "capow/sparse/formats.hpp"
#include "capow/tasking/thread_pool.hpp"

namespace capow::sparse {

/// C = A * B with A sparse CSR (m x n), B dense (n x k), C dense
/// (m x k). Parallel over row blocks when `pool` is given. Instrumented:
/// per row block, the CSR streams are read once and each nonzero gathers
/// a k-wide row of B; C rows are written once.
/// Throws std::invalid_argument on dimension mismatch.
void spmm(const CsrMatrix& a, linalg::ConstMatrixView b,
          linalg::MatrixView c, tasking::ThreadPool* pool = nullptr);

/// Flops of one SpMM sweep: 2 * nnz * k.
double spmm_flops(const SpmvShape& shape, std::size_t k);

/// Logical traffic in bytes, mirroring the instrumentation exactly.
double spmm_traffic_bytes(const SpmvShape& shape, std::size_t k);

/// Simulator profile for `iterations` SpMM sweeps with k right-hand
/// sides. Arithmetic intensity grows with k, so wide SpMM climbs out of
/// the bandwidth-bound regime SpMV lives in.
sim::WorkProfile spmm_profile(const SpmvShape& shape, std::size_t k,
                              const machine::MachineSpec& spec,
                              unsigned threads, std::size_t iterations = 1);

}  // namespace capow::sparse
