#include "capow/sparse/cost_model.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace capow::sparse {

const char* format_name(Format f) noexcept {
  switch (f) {
    case Format::kCsr:
      return "CSR";
    case Format::kCoo:
      return "COO";
    case Format::kEll:
      return "ELL";
  }
  return "?";
}

SpmvShape shape_of(const CsrMatrix& m) {
  m.validate();
  SpmvShape s;
  s.rows = m.rows;
  s.cols = m.cols;
  s.nnz = m.nnz();
  for (std::size_t r = 0; r < m.rows; ++r) {
    s.ell_width = std::max<std::size_t>(s.ell_width,
                                        m.row_ptr[r + 1] - m.row_ptr[r]);
  }
  return s;
}

double spmv_flops(Format f, const SpmvShape& s) {
  switch (f) {
    case Format::kCsr:
    case Format::kCoo:
      return 2.0 * static_cast<double>(s.nnz);
    case Format::kEll:
      return 2.0 * static_cast<double>(s.rows) * s.ell_width;
  }
  throw std::invalid_argument("spmv_flops: bad format");
}

double spmv_traffic_bytes(Format f, const SpmvShape& s) {
  const double rows = static_cast<double>(s.rows);
  const double nnz = static_cast<double>(s.nnz);
  switch (f) {
    case Format::kCsr:
      // row_ptr walk + col/value/x-gather streams + y writes + row_ptr[0].
      return 4.0 * rows + 20.0 * nnz + 4.0 + 8.0 * rows;
    case Format::kCoo:
      // triplets + x gathers + y read-modify-write + y zero-fill.
      return 32.0 * nnz + 8.0 * nnz + 8.0 * rows;
    case Format::kEll: {
      const double slots = rows * static_cast<double>(s.ell_width);
      return 20.0 * slots + 8.0 * rows;
    }
  }
  throw std::invalid_argument("spmv_traffic_bytes: bad format");
}

sim::WorkProfile spmv_profile(Format f, const SpmvShape& s,
                              const machine::MachineSpec& spec,
                              unsigned threads, std::size_t iterations) {
  if (iterations == 0) {
    throw std::invalid_argument("spmv_profile: zero iterations");
  }
  const double traffic =
      spmv_traffic_bytes(f, s) * static_cast<double>(iterations);
  const double flops = spmv_flops(f, s) * static_cast<double>(iterations);
  const unsigned p =
      f == Format::kCoo ? 1u : std::min(threads, spec.core_count);

  // The matrix stream misses the LLC whenever the operand exceeds it;
  // the x vector (gathers) stays resident when it fits.
  const double matrix_bytes =
      f == Format::kEll
          ? 12.0 * static_cast<double>(s.rows) * s.ell_width
          : (f == Format::kCoo ? 16.0 : 12.0) * static_cast<double>(s.nnz);
  const bool streams_dram =
      matrix_bytes + 8.0 * static_cast<double>(s.cols) >
      static_cast<double>(spec.llc_capacity_bytes());

  sim::WorkProfile wp;
  wp.name = std::string("spmv-") + format_name(f);
  wp.add(sim::PhaseCost{
      .label = wp.name,
      .flops = flops,
      .dram_bytes = streams_dram ? traffic : 0.0,
      .cache_bytes = streams_dram ? 0.0 : traffic,
      .parallelism = p,
      .efficiency = kSpmvEfficiency,
      .sync_events = (p > 1) ? iterations : 0,
  });
  return wp;
}

}  // namespace capow::sparse
