// capow::sparse — sparse matrix storage formats (paper Section VIII).
//
// The paper's second future-work thread: "we shall also address the
// energy performance scaling properties of the various sparse matrix
// (vector) storage techniques." This module provides the three classic
// formats (CSR, COO, ELLPACK) with conversions, a deterministic sparse
// workload generator, and per-format traffic accounting so the EP model
// can rank the *storage formats* by energy-performance scaling just as
// the core paper ranks dense algorithms.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "capow/linalg/matrix.hpp"

namespace capow::sparse {

/// Compressed Sparse Row: row_ptr (n+1), col_idx/values (nnz).
struct CsrMatrix {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<std::uint32_t> row_ptr;  ///< size rows + 1
  std::vector<std::uint32_t> col_idx;  ///< size nnz, ascending per row
  std::vector<double> values;          ///< size nnz

  std::size_t nnz() const noexcept { return values.size(); }
  /// Storage footprint in bytes (index + value arrays).
  std::size_t bytes() const noexcept;
  /// Throws std::invalid_argument when the structure is inconsistent
  /// (bad pointer monotonicity, column out of range, size mismatches).
  void validate() const;
};

/// Coordinate format: parallel row/col/value triplets, row-major sorted.
struct CooMatrix {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<std::uint32_t> row_idx;
  std::vector<std::uint32_t> col_idx;
  std::vector<double> values;

  std::size_t nnz() const noexcept { return values.size(); }
  std::size_t bytes() const noexcept;
  void validate() const;
};

/// ELLPACK: fixed width = max row population; zero-padded slots carry
/// column index kEllPad. Regular layout (SIMD/vector-friendly) at the
/// cost of padding storage and traffic.
struct EllMatrix {
  static constexpr std::uint32_t kEllPad = 0xFFFFFFFFu;

  std::size_t rows = 0;
  std::size_t cols = 0;
  std::size_t width = 0;               ///< entries stored per row
  std::vector<std::uint32_t> col_idx;  ///< rows * width, kEllPad when unused
  std::vector<double> values;          ///< rows * width

  std::size_t nnz() const noexcept;  ///< non-pad entries
  std::size_t bytes() const noexcept;
  void validate() const;
};

/// Builds CSR from a dense matrix (entries with |v| > 0 are kept).
CsrMatrix csr_from_dense(linalg::ConstMatrixView dense);
/// Dense reconstruction (for tests).
linalg::Matrix csr_to_dense(const CsrMatrix& m);

CooMatrix coo_from_csr(const CsrMatrix& m);
EllMatrix ell_from_csr(const CsrMatrix& m);

/// Deterministic random sparse matrix: each row receives approximately
/// `density * cols` uniformly placed nonzeros (at least 1), values in
/// [-1, 1). Throws for density outside (0, 1].
CsrMatrix random_sparse(std::size_t rows, std::size_t cols, double density,
                        std::uint64_t seed);

}  // namespace capow::sparse
