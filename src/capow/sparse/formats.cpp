#include "capow/sparse/formats.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

#include "capow/linalg/random.hpp"

namespace capow::sparse {

std::size_t CsrMatrix::bytes() const noexcept {
  return row_ptr.size() * sizeof(std::uint32_t) +
         col_idx.size() * sizeof(std::uint32_t) +
         values.size() * sizeof(double);
}

void CsrMatrix::validate() const {
  if (row_ptr.size() != rows + 1) {
    throw std::invalid_argument("csr: row_ptr size != rows + 1");
  }
  if (col_idx.size() != values.size()) {
    throw std::invalid_argument("csr: col_idx/values size mismatch");
  }
  if (row_ptr.front() != 0 || row_ptr.back() != values.size()) {
    throw std::invalid_argument("csr: row_ptr endpoints inconsistent");
  }
  for (std::size_t r = 0; r < rows; ++r) {
    if (row_ptr[r] > row_ptr[r + 1]) {
      throw std::invalid_argument("csr: row_ptr not monotone");
    }
    for (std::uint32_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      if (col_idx[k] >= cols) {
        throw std::invalid_argument("csr: column index out of range");
      }
      if (k > row_ptr[r] && col_idx[k] <= col_idx[k - 1]) {
        throw std::invalid_argument("csr: columns not strictly ascending");
      }
    }
  }
}

std::size_t CooMatrix::bytes() const noexcept {
  return (row_idx.size() + col_idx.size()) * sizeof(std::uint32_t) +
         values.size() * sizeof(double);
}

void CooMatrix::validate() const {
  if (row_idx.size() != values.size() || col_idx.size() != values.size()) {
    throw std::invalid_argument("coo: triplet arrays size mismatch");
  }
  for (std::size_t k = 0; k < values.size(); ++k) {
    if (row_idx[k] >= rows || col_idx[k] >= cols) {
      throw std::invalid_argument("coo: index out of range");
    }
    if (k > 0 && (row_idx[k] < row_idx[k - 1] ||
                  (row_idx[k] == row_idx[k - 1] &&
                   col_idx[k] <= col_idx[k - 1]))) {
      throw std::invalid_argument("coo: not row-major sorted");
    }
  }
}

std::size_t EllMatrix::nnz() const noexcept {
  std::size_t count = 0;
  for (std::uint32_t c : col_idx) {
    if (c != kEllPad) ++count;
  }
  return count;
}

std::size_t EllMatrix::bytes() const noexcept {
  return col_idx.size() * sizeof(std::uint32_t) +
         values.size() * sizeof(double);
}

void EllMatrix::validate() const {
  if (col_idx.size() != rows * width || values.size() != rows * width) {
    throw std::invalid_argument("ell: array sizes != rows * width");
  }
  for (std::uint32_t c : col_idx) {
    if (c != kEllPad && c >= cols) {
      throw std::invalid_argument("ell: column index out of range");
    }
  }
}

CsrMatrix csr_from_dense(linalg::ConstMatrixView dense) {
  CsrMatrix m;
  m.rows = dense.rows();
  m.cols = dense.cols();
  m.row_ptr.reserve(m.rows + 1);
  m.row_ptr.push_back(0);
  for (std::size_t i = 0; i < dense.rows(); ++i) {
    for (std::size_t j = 0; j < dense.cols(); ++j) {
      const double v = dense(i, j);
      if (v != 0.0) {
        m.col_idx.push_back(static_cast<std::uint32_t>(j));
        m.values.push_back(v);
      }
    }
    m.row_ptr.push_back(static_cast<std::uint32_t>(m.values.size()));
  }
  return m;
}

linalg::Matrix csr_to_dense(const CsrMatrix& m) {
  m.validate();
  linalg::Matrix dense = linalg::Matrix::zeros(m.rows, m.cols);
  for (std::size_t r = 0; r < m.rows; ++r) {
    for (std::uint32_t k = m.row_ptr[r]; k < m.row_ptr[r + 1]; ++k) {
      dense(r, m.col_idx[k]) = m.values[k];
    }
  }
  return dense;
}

CooMatrix coo_from_csr(const CsrMatrix& m) {
  m.validate();
  CooMatrix out;
  out.rows = m.rows;
  out.cols = m.cols;
  out.row_idx.reserve(m.nnz());
  out.col_idx = m.col_idx;
  out.values = m.values;
  for (std::size_t r = 0; r < m.rows; ++r) {
    for (std::uint32_t k = m.row_ptr[r]; k < m.row_ptr[r + 1]; ++k) {
      out.row_idx.push_back(static_cast<std::uint32_t>(r));
    }
  }
  return out;
}

EllMatrix ell_from_csr(const CsrMatrix& m) {
  m.validate();
  EllMatrix out;
  out.rows = m.rows;
  out.cols = m.cols;
  for (std::size_t r = 0; r < m.rows; ++r) {
    out.width = std::max<std::size_t>(out.width,
                                      m.row_ptr[r + 1] - m.row_ptr[r]);
  }
  out.col_idx.assign(out.rows * out.width, EllMatrix::kEllPad);
  out.values.assign(out.rows * out.width, 0.0);
  for (std::size_t r = 0; r < m.rows; ++r) {
    std::size_t slot = 0;
    for (std::uint32_t k = m.row_ptr[r]; k < m.row_ptr[r + 1]; ++k, ++slot) {
      out.col_idx[r * out.width + slot] = m.col_idx[k];
      out.values[r * out.width + slot] = m.values[k];
    }
  }
  return out;
}

CsrMatrix random_sparse(std::size_t rows, std::size_t cols, double density,
                        std::uint64_t seed) {
  if (density <= 0.0 || density > 1.0) {
    throw std::invalid_argument("random_sparse: density outside (0, 1]");
  }
  if (cols == 0) {
    throw std::invalid_argument("random_sparse: zero columns");
  }
  linalg::Xoshiro256 rng(seed);
  CsrMatrix m;
  m.rows = rows;
  m.cols = cols;
  m.row_ptr.reserve(rows + 1);
  m.row_ptr.push_back(0);
  // Rows are deliberately irregular (0.5x to 1.5x the mean population):
  // real sparse operators are, and the irregularity is what makes the
  // format comparison non-trivial (ELL pays padding to the widest row).
  const double mean_per_row = density * static_cast<double>(cols);
  std::set<std::uint32_t> row_cols;
  for (std::size_t r = 0; r < rows; ++r) {
    const std::size_t per_row = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::llround(mean_per_row * rng.uniform(0.5, 1.5))));
    row_cols.clear();
    while (row_cols.size() < std::min(per_row, cols)) {
      row_cols.insert(static_cast<std::uint32_t>(rng.uniform_u64(cols)));
    }
    for (std::uint32_t c : row_cols) {
      m.col_idx.push_back(c);
      m.values.push_back(rng.uniform(-1.0, 1.0));
    }
    m.row_ptr.push_back(static_cast<std::uint32_t>(m.values.size()));
  }
  return m;
}

}  // namespace capow::sparse
