// Cost model for SpMV across storage formats, mirroring spmv.cpp's
// instrumentation exactly — the input to the sparse EP-scaling study.
#pragma once

#include <cstddef>

#include "capow/machine/machine.hpp"
#include "capow/sim/cost_profile.hpp"
#include "capow/sparse/formats.hpp"

namespace capow::sparse {

enum class Format { kCsr = 0, kCoo = 1, kEll = 2 };
inline constexpr Format kAllFormats[] = {Format::kCsr, Format::kCoo,
                                         Format::kEll};

/// "CSR", "COO", "ELL".
const char* format_name(Format f) noexcept;

/// Structural summary of a sparse operand.
struct SpmvShape {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::size_t nnz = 0;
  std::size_t ell_width = 0;  ///< max row population (ELL padding driver)
};

/// Shape of a CSR matrix (ell_width = max row length).
SpmvShape shape_of(const CsrMatrix& m);

/// Useful flops (2 per stored multiply-add lane; ELL counts pad lanes,
/// matching its kernel's regular-lane execution).
double spmv_flops(Format f, const SpmvShape& s);

/// Logical traffic in bytes for one SpMV, identical to what the
/// instrumented kernels count (serial execution).
double spmv_traffic_bytes(Format f, const SpmvShape& s);

/// Simulator profile for `iterations` repeated SpMVs (the usual solver
/// inner loop). COO is serial (scatter accumulation); CSR/ELL
/// parallelize over rows. SpMV is gather-limited, hence the low
/// efficiency constant.
inline constexpr double kSpmvEfficiency = 0.04;

sim::WorkProfile spmv_profile(Format f, const SpmvShape& s,
                              const machine::MachineSpec& spec,
                              unsigned threads, std::size_t iterations = 1);

}  // namespace capow::sparse
