// Sparse matrix-vector multiply kernels per storage format, instrumented
// with format-specific traffic so the EP model can rank the formats.
//
// Traffic conventions (mirrored exactly by the cost model):
//   CSR: read row_ptr (4(n+1) B), col_idx (4nnz), values (8nnz), x
//        gathers (8nnz), write y (8n).
//   COO: read triplets (16nnz), x gathers (8nnz), y read+write per
//        element touched (16nnz) — the scatter-accumulate penalty.
//   ELL: read col_idx + values over rows*width including padding
//        (12*rows*width), x gathers (8*rows*width), write y (8n).
#pragma once

#include <span>
#include <vector>

#include "capow/sparse/formats.hpp"
#include "capow/tasking/thread_pool.hpp"

namespace capow::sparse {

/// y = A * x (CSR). Parallel over rows when `pool` is given.
/// Throws std::invalid_argument on dimension mismatch.
void spmv(const CsrMatrix& a, std::span<const double> x,
          std::span<double> y, tasking::ThreadPool* pool = nullptr);

/// y = A * x (COO). Serial (scatter-accumulate is order-dependent).
void spmv(const CooMatrix& a, std::span<const double> x,
          std::span<double> y);

/// y = A * x (ELL). Parallel over rows when `pool` is given.
void spmv(const EllMatrix& a, std::span<const double> x,
          std::span<double> y, tasking::ThreadPool* pool = nullptr);

/// Reference: dense y = A * x used by tests.
std::vector<double> dense_mv(linalg::ConstMatrixView a,
                             std::span<const double> x);

}  // namespace capow::sparse
