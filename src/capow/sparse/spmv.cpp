#include "capow/sparse/spmv.hpp"

#include <stdexcept>

#include "capow/tasking/parallel_for.hpp"
#include "capow/trace/counters.hpp"

namespace capow::sparse {

namespace {

void check_shapes(std::size_t rows, std::size_t cols, std::size_t xs,
                  std::size_t ys) {
  if (xs != cols || ys != rows) {
    throw std::invalid_argument("spmv: vector dimensions mismatch");
  }
}

}  // namespace

void spmv(const CsrMatrix& a, std::span<const double> x,
          std::span<double> y, tasking::ThreadPool* pool) {
  check_shapes(a.rows, a.cols, x.size(), y.size());
  const auto body = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t r = lo; r < hi; ++r) {
      double acc = 0.0;
      for (std::uint32_t k = a.row_ptr[r]; k < a.row_ptr[r + 1]; ++k) {
        acc += a.values[k] * x[a.col_idx[k]];
      }
      y[r] = acc;
    }
    const std::size_t span_nnz = a.row_ptr[hi] - a.row_ptr[lo];
    trace::count_flops(2 * span_nnz);
    trace::count_dram_read(4 * (hi - lo) + 12 * span_nnz + 8 * span_nnz);
    trace::count_dram_write(8 * (hi - lo));
  };
  if (pool != nullptr && pool->concurrency() > 1 && a.rows > 1) {
    tasking::parallel_for(*pool, 0, a.rows, body, 64);
    trace::count_sync();
  } else {
    body(0, a.rows);
  }
  trace::count_dram_read(4);  // row_ptr[0]
}

void spmv(const CooMatrix& a, std::span<const double> x,
          std::span<double> y) {
  check_shapes(a.rows, a.cols, x.size(), y.size());
  for (double& v : y) v = 0.0;
  for (std::size_t k = 0; k < a.values.size(); ++k) {
    y[a.row_idx[k]] += a.values[k] * x[a.col_idx[k]];
  }
  const std::size_t nnz = a.values.size();
  trace::count_flops(2 * nnz);
  // Triplet stream + x gathers + y read-modify-write per entry, plus the
  // initial y zero-fill.
  trace::count_dram_read(16 * nnz + 8 * nnz + 8 * nnz);
  trace::count_dram_write(8 * nnz + 8 * a.rows);
}

void spmv(const EllMatrix& a, std::span<const double> x,
          std::span<double> y, tasking::ThreadPool* pool) {
  check_shapes(a.rows, a.cols, x.size(), y.size());
  const auto body = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t r = lo; r < hi; ++r) {
      double acc = 0.0;
      for (std::size_t s = 0; s < a.width; ++s) {
        const std::uint32_t c = a.col_idx[r * a.width + s];
        if (c != EllMatrix::kEllPad) {
          acc += a.values[r * a.width + s] * x[c];
        }
      }
      y[r] = acc;
    }
    const std::size_t slots = (hi - lo) * a.width;
    // Padding slots are streamed (and their x gather skipped).
    trace::count_flops(2 * slots);  // regular-lane model: pads cost lanes
    trace::count_dram_read(12 * slots + 8 * slots);
    trace::count_dram_write(8 * (hi - lo));
  };
  if (pool != nullptr && pool->concurrency() > 1 && a.rows > 1) {
    tasking::parallel_for(*pool, 0, a.rows, body, 64);
    trace::count_sync();
  } else {
    body(0, a.rows);
  }
}

std::vector<double> dense_mv(linalg::ConstMatrixView a,
                             std::span<const double> x) {
  if (x.size() != a.cols()) {
    throw std::invalid_argument("dense_mv: dimension mismatch");
  }
  std::vector<double> y(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* row = a.row(i);
    double acc = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) acc += row[j] * x[j];
    y[i] = acc;
  }
  return y;
}

}  // namespace capow::sparse
