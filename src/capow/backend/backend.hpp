// capow::backend — the device-abstraction seam between the algorithms
// and the execution substrate.
//
// The paper evaluates one homogeneous CPU; the roadmap's north star is
// the same EP model evaluated per device class. A Backend bundles what
// an algorithm needs to know about the device it dispatches onto:
//   * identity and op capabilities (which AlgorithmIds run natively),
//   * the microkernel registry visible on the device,
//   * a per-device memory allocator (a WorkspaceArena owned by the
//     AllocatorRegistry in memory.hpp),
//   * a machine model (GFLOP/s roof, bandwidth, power coefficients)
//     driving the sim/cost_profile machinery, and the RAPL-style power
//     plane the profiler attributes the device's energy on.
//
// BackendRegistry holds every registered device and performs *graceful
// fallback dispatch*: an op the requested backend does not support runs
// on the host CPU backend instead, with a telemetry-visible
// capow_backend_fallbacks_total counter — a run never fails because a
// device lacks an op, and the fallback is never silent. This mirrors
// the library_state / device_guard / fallback structure of LBANN's
// lbannv2 backend layer (see ROADMAP.md).
//
// Two device classes register today: `cpu` (the host; arena is the
// process arena, spec is the paper's Haswell — dispatching on it is
// bit-identical to the pre-seam code path) and `sim_accel`
// (sim_accel.hpp): a simulated wide-vector accelerator that runs dense
// GEMM natively and falls back for the recursive algorithms.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

#include "capow/blas/microkernel.hpp"
#include "capow/blas/workspace.hpp"
#include "capow/core/algorithms.hpp"
#include "capow/machine/machine.hpp"

namespace capow::backend {

/// Identity of one registered device class.
enum class BackendId : int { kCpu = 0, kSimAccel = 1 };
inline constexpr std::size_t kBackendCount = 2;

/// Registry key ("cpu", "sim_accel") — also the CAPOW_BACKEND value.
const char* backend_name(BackendId id) noexcept;

/// One device class: identity, capabilities, kernel registry handle,
/// memory allocator, and the machine model + power plane the simulator
/// and profiler use for it.
class Backend {
 public:
  virtual ~Backend() = default;
  Backend() = default;
  Backend(const Backend&) = delete;
  Backend& operator=(const Backend&) = delete;

  virtual BackendId id() const noexcept = 0;
  virtual const char* name() const noexcept = 0;
  virtual const char* description() const noexcept = 0;

  /// Whether `op` runs natively on this device. An unsupported op is
  /// not an error: BackendRegistry::dispatch falls back to the host.
  virtual bool supports(core::AlgorithmId op) const noexcept = 0;

  /// The microkernel variants executable on this device. Both current
  /// backends compute with host arithmetic (results stay bit-identical
  /// across devices by construction), so this is a view of the blas
  /// registry; a future native device would expose its own table.
  virtual std::span<const blas::MicroKernel> kernels() const noexcept = 0;

  /// The device's memory pool (AllocatorRegistry-owned). Dispatched
  /// calls lease packing buffers and recursion temporaries here; the
  /// host backend returns blas::WorkspaceArena::process_arena().
  virtual blas::WorkspaceArena& arena() const noexcept = 0;

  /// Machine model driving sim::simulate for this device: compute
  /// roof, memory bandwidth, cache hierarchy, power coefficients.
  virtual const machine::MachineSpec& device_spec() const noexcept = 0;

  /// The RAPL-style plane that carries this device's compute power —
  /// what the profiler and the EP study read as "the device's watts"
  /// (host: PACKAGE, the paper's measurement; sim_accel: PP0, the
  /// compute-die rail of the modeled card).
  virtual machine::PowerPlane power_plane() const noexcept = 0;

  /// Fraction of the device's peak a tuned dense GEMM attains — the
  /// `y` scaling of the Eq (9) crossover study.
  virtual double gemm_efficiency() const noexcept = 0;
};

/// Outcome of one fallback-aware dispatch decision.
struct DispatchDecision {
  Backend* requested = nullptr;  ///< the backend the caller asked for
  Backend* chosen = nullptr;     ///< where the op actually runs
  bool fell_back = false;        ///< chosen != requested
};

/// Process-wide table of registered device classes.
class BackendRegistry {
 public:
  static BackendRegistry& instance();

  /// The host CPU backend — always registered, never falls back.
  Backend& host() noexcept;

  /// Lookup by id/name; null when not registered.
  Backend* find(BackendId id) noexcept;
  Backend* find(std::string_view name) noexcept;

  /// Every registered backend, ordered by id.
  std::span<Backend* const> all() noexcept;

  /// Fallback dispatch: the requested backend when it supports `op`,
  /// else the host backend — incrementing the process fallback counter
  /// and emitting a `backend.fallback` telemetry instant, so degraded
  /// placement is observable, never silent.
  DispatchDecision dispatch(BackendId requested, core::AlgorithmId op);

  /// Process-lifetime fallback count (capow_backend_fallbacks_total).
  std::uint64_t fallbacks_total() const noexcept;
  /// Test support: zero the fallback counter.
  void reset_fallbacks() noexcept;

 private:
  BackendRegistry();
  Backend* backends_[kBackendCount];
};

/// Parses a CAPOW_BACKEND-style value: "cpu"/"sim_accel" name the
/// backend, "auto" (and empty) mean no override; anything else throws
/// std::invalid_argument listing the registered names.
std::optional<BackendId> parse_backend(std::string_view value);

/// The CAPOW_BACKEND environment override, parsed once per process
/// (same contract as blas::env_kernel_override): nullopt when unset or
/// "auto"; throws std::invalid_argument the first time for an unknown
/// value.
std::optional<BackendId> env_backend_override();

/// Resolves the backend to dispatch on: `requested` when provided,
/// else the CAPOW_BACKEND override, else the host CPU.
BackendId resolve_backend(std::optional<BackendId> requested);

/// The backend the calling thread is currently dispatched on — set by
/// BackendScope, defaulting to the host. The device_guard analogue:
/// telemetry and nested code can ask "which device am I on?" without
/// threading a pointer through every layer.
Backend& current_backend() noexcept;

/// RAII device guard: installs `b` as the thread's current backend and
/// its arena as the blas ambient arena (blas::active_arena), so callers
/// below the seam that pass no explicit arena lease from the dispatched
/// device's pool. Restores both on destruction.
class BackendScope {
 public:
  explicit BackendScope(Backend& b) noexcept;
  ~BackendScope();
  BackendScope(const BackendScope&) = delete;
  BackendScope& operator=(const BackendScope&) = delete;

 private:
  Backend* prev_;
  blas::ArenaScope arena_scope_;
};

}  // namespace capow::backend
