// Per-device memory: the allocator registry behind Backend::arena().
//
// Each registered device class owns exactly one WorkspaceArena — its
// "device memory pool". The host backend's entry aliases the process
// arena (so dispatching on `cpu` is allocation-identical to the
// pre-seam code path); every other device gets a private arena with the
// same pooling/size-class behaviour, modeling physically separate
// device memory. Arenas are never destroyed (the process_arena
// rationale: checkouts on detached threads must stay valid at exit).
#pragma once

#include <array>

#include "capow/blas/workspace.hpp"

namespace capow::backend {

enum class BackendId : int;
inline constexpr std::size_t kAllocatorCount = 2;  // == kBackendCount

/// Maps each BackendId to its device arena.
class AllocatorRegistry {
 public:
  static AllocatorRegistry& instance();

  /// The arena backing `id`'s device memory. The host entry IS
  /// blas::WorkspaceArena::process_arena().
  blas::WorkspaceArena& arena_for(BackendId id) noexcept;

  /// Snapshot of every device arena's counters, indexed by BackendId —
  /// telemetry's view of per-device pooling behaviour.
  std::array<blas::ArenaStats, kAllocatorCount> stats() const;

  /// Frees idle pooled buffers in every device arena.
  void trim_all();

 private:
  AllocatorRegistry();
  std::array<blas::WorkspaceArena*, kAllocatorCount> arenas_{};
};

}  // namespace capow::backend
