#include "capow/backend/backend.hpp"

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "capow/backend/memory.hpp"
#include "capow/backend/sim_accel.hpp"
#include "capow/blas/cost_model.hpp"
#include "capow/telemetry/telemetry.hpp"

namespace capow::backend {

namespace {

// The host device: the paper's measurement platform. Everything routes
// exactly where the pre-seam code went — process arena, full kernel
// registry, Haswell spec, PACKAGE plane — so dispatching on `cpu` is
// bit-identical (and allocation-identical) to not dispatching at all.
class CpuBackend final : public Backend {
 public:
  BackendId id() const noexcept override { return BackendId::kCpu; }
  const char* name() const noexcept override { return "cpu"; }
  const char* description() const noexcept override {
    return "host CPU (the paper's E3-1225 Haswell measurement platform)";
  }
  bool supports(core::AlgorithmId) const noexcept override { return true; }
  std::span<const blas::MicroKernel> kernels() const noexcept override {
    return blas::kernel_registry();
  }
  blas::WorkspaceArena& arena() const noexcept override {
    return AllocatorRegistry::instance().arena_for(BackendId::kCpu);
  }
  const machine::MachineSpec& device_spec() const noexcept override {
    return spec_;
  }
  machine::PowerPlane power_plane() const noexcept override {
    // The paper measures the whole socket.
    return machine::PowerPlane::kPackage;
  }
  double gemm_efficiency() const noexcept override {
    return blas::kTunedGemmEfficiency;
  }

 private:
  machine::MachineSpec spec_ = machine::haswell_e3_1225();
};

// The simulated accelerator (sim_accel.hpp). Runs dense GEMM natively
// against its own device arena and machine model; the recursive
// task-parallel algorithms are unsupported and take the fallback path.
class SimAccelBackend final : public Backend {
 public:
  BackendId id() const noexcept override { return BackendId::kSimAccel; }
  const char* name() const noexcept override { return "sim_accel"; }
  const char* description() const noexcept override {
    return "simulated wide-vector accelerator (768 GF/s, 450 GB/s HBM)";
  }
  bool supports(core::AlgorithmId op) const noexcept override {
    return op == core::AlgorithmId::kOpenBlas;
  }
  std::span<const blas::MicroKernel> kernels() const noexcept override {
    // Host arithmetic stands in for the device's — same registry, so
    // results stay bit-identical across backends by construction.
    return blas::kernel_registry();
  }
  blas::WorkspaceArena& arena() const noexcept override {
    return AllocatorRegistry::instance().arena_for(BackendId::kSimAccel);
  }
  const machine::MachineSpec& device_spec() const noexcept override {
    return spec_;
  }
  machine::PowerPlane power_plane() const noexcept override {
    // The compute-die rail of the modeled card; board power (HBM PHYs,
    // regulators) rides in uncore_static on PACKAGE.
    return machine::PowerPlane::kPP0;
  }
  double gemm_efficiency() const noexcept override {
    // Dense GEMM sustains a higher fraction of peak on the wide,
    // bandwidth-rich device than the 0.42 the Haswell calibration hits.
    return 0.55;
  }

 private:
  machine::MachineSpec spec_ = sim_accel_spec();
};

std::atomic<std::uint64_t> g_fallbacks{0};

std::string registered_names() {
  std::string names;
  for (std::size_t i = 0; i < kBackendCount; ++i) {
    if (!names.empty()) names += ", ";
    names += backend_name(static_cast<BackendId>(i));
  }
  return names;
}

thread_local Backend* t_current_backend = nullptr;

}  // namespace

const char* backend_name(BackendId id) noexcept {
  switch (id) {
    case BackendId::kCpu:
      return "cpu";
    case BackendId::kSimAccel:
      return "sim_accel";
  }
  return "?";
}

BackendRegistry::BackendRegistry() {
  // Leaked like process_arena(): dispatch decisions captured by
  // detached threads must stay valid at exit.
  static CpuBackend* cpu = new CpuBackend();
  static SimAccelBackend* sim = new SimAccelBackend();
  backends_[static_cast<int>(BackendId::kCpu)] = cpu;
  backends_[static_cast<int>(BackendId::kSimAccel)] = sim;
}

BackendRegistry& BackendRegistry::instance() {
  static BackendRegistry* registry = new BackendRegistry();
  return *registry;
}

Backend& BackendRegistry::host() noexcept {
  return *backends_[static_cast<int>(BackendId::kCpu)];
}

Backend* BackendRegistry::find(BackendId id) noexcept {
  const int i = static_cast<int>(id);
  if (i < 0 || i >= static_cast<int>(kBackendCount)) return nullptr;
  return backends_[i];
}

Backend* BackendRegistry::find(std::string_view name) noexcept {
  for (Backend* b : all()) {
    if (b != nullptr && name == b->name()) return b;
  }
  return nullptr;
}

std::span<Backend* const> BackendRegistry::all() noexcept {
  return {backends_, kBackendCount};
}

DispatchDecision BackendRegistry::dispatch(BackendId requested,
                                           core::AlgorithmId op) {
  DispatchDecision d;
  d.requested = find(requested);
  if (d.requested == nullptr) d.requested = &host();
  d.chosen = d.requested;
  if (!d.requested->supports(op)) {
    d.chosen = &host();
    d.fell_back = true;
    g_fallbacks.fetch_add(1, std::memory_order_relaxed);
    CAPOW_TINSTANT("backend.fallback", "backend");
  }
  return d;
}

std::uint64_t BackendRegistry::fallbacks_total() const noexcept {
  return g_fallbacks.load(std::memory_order_relaxed);
}

void BackendRegistry::reset_fallbacks() noexcept {
  g_fallbacks.store(0, std::memory_order_relaxed);
}

std::optional<BackendId> parse_backend(std::string_view value) {
  if (value.empty() || value == "auto") return std::nullopt;
  for (std::size_t i = 0; i < kBackendCount; ++i) {
    const auto id = static_cast<BackendId>(i);
    if (value == backend_name(id)) return id;
  }
  throw std::invalid_argument("CAPOW_BACKEND: unknown backend '" +
                              std::string(value) + "' (expected auto, " +
                              registered_names() + ")");
}

std::optional<BackendId> env_backend_override() {
  static const std::optional<BackendId> parsed = [] {
    const char* value = std::getenv("CAPOW_BACKEND");
    return value != nullptr ? parse_backend(value) : std::nullopt;
  }();
  return parsed;
}

BackendId resolve_backend(std::optional<BackendId> requested) {
  if (requested.has_value()) return *requested;
  if (const auto env = env_backend_override(); env.has_value()) return *env;
  return BackendId::kCpu;
}

Backend& current_backend() noexcept {
  return t_current_backend != nullptr ? *t_current_backend
                                      : BackendRegistry::instance().host();
}

BackendScope::BackendScope(Backend& b) noexcept
    : prev_(t_current_backend), arena_scope_(b.arena()) {
  t_current_backend = &b;
}

BackendScope::~BackendScope() { t_current_backend = prev_; }

}  // namespace capow::backend
