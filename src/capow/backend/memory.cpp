#include "capow/backend/memory.hpp"

#include "capow/backend/backend.hpp"

namespace capow::backend {

AllocatorRegistry::AllocatorRegistry() {
  // The host "device memory" is the process arena itself — pre-seam
  // callers and cpu-dispatched callers pool in the same place, which is
  // what keeps backend=cpu allocation-identical to the old path. The
  // accelerator gets a private pool modeling separate device memory;
  // leaked for the same reason process_arena() is.
  arenas_[static_cast<int>(BackendId::kCpu)] =
      &blas::WorkspaceArena::process_arena();
  arenas_[static_cast<int>(BackendId::kSimAccel)] =
      new blas::WorkspaceArena();
}

AllocatorRegistry& AllocatorRegistry::instance() {
  static AllocatorRegistry* registry = new AllocatorRegistry();
  return *registry;
}

blas::WorkspaceArena& AllocatorRegistry::arena_for(BackendId id) noexcept {
  const int i = static_cast<int>(id);
  if (i < 0 || i >= static_cast<int>(kAllocatorCount)) {
    return blas::WorkspaceArena::process_arena();
  }
  return *arenas_[i];
}

std::array<blas::ArenaStats, kAllocatorCount> AllocatorRegistry::stats()
    const {
  std::array<blas::ArenaStats, kAllocatorCount> out{};
  for (std::size_t i = 0; i < kAllocatorCount; ++i) {
    out[i] = arenas_[i]->stats();
  }
  return out;
}

void AllocatorRegistry::trim_all() {
  for (blas::WorkspaceArena* arena : arenas_) arena->trim();
}

}  // namespace capow::backend
