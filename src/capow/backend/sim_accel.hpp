// The `sim_accel` device class: a simulated wide-vector accelerator.
//
// A second device class is what turns the EP model from a single-
// platform measurement into a per-device comparison — the scenario the
// paper's one Haswell box could never reach. sim_accel is deliberately
// the opposite machine balance: ~7.5x the Haswell's compute roof but
// ~44x its memory bandwidth, so its flops-per-byte ratio is *low*
// (bandwidth-rich). Under Eq (9) that pulls the Strassen/blocked
// crossover from beyond the CPU's memory capacity down to a dimension
// that trivially fits — per-device crossover rows are the study's
// headline.
//
// The accelerator runs dense GEMM natively (leasing from its own
// device arena, simulated against its own spec) and does not implement
// the recursive task-parallel algorithms, so Strassen/CAPS requests
// exercise the registry's fallback path. Arithmetic always executes on
// the host (results are bit-identical across backends by construction);
// what differs per device is memory placement, the projected
// time/power/EP, and the telemetry attribution.
#pragma once

#include "capow/machine/machine.hpp"

namespace capow::backend {

/// Machine model of the simulated accelerator: 8 compute units of
/// 64 DP flops/cycle at 1.5 GHz (768 GF/s peak), HBM-class 450 GB/s,
/// and a flat two-level on-device memory hierarchy. Power coefficients
/// follow the CoreSpec model: high per-CU active power, a large
/// always-on device floor (pp0_static + uncore covering HBM PHYs and
/// regulators).
machine::MachineSpec sim_accel_spec();

}  // namespace capow::backend
