#include "capow/backend/sim_accel.hpp"

namespace capow::backend {

machine::MachineSpec sim_accel_spec() {
  machine::MachineSpec m;
  m.name = "sim-accel (simulated wide-vector accelerator)";
  // 8 compute units, each a 1.5 GHz 64-lane DP FMA engine: 96 GF/s per
  // CU, 768 GF/s device peak. A CU draws far more than a Haswell core
  // when its datapath is saturated, and its stall/idle floor is low —
  // accelerator silicon clock-gates aggressively.
  m.core_count = 8;
  m.core = machine::CoreSpec{
      .frequency_hz = 1.5e9,
      .flops_per_cycle = 64.0,
      .busy_power_w = 8.0,
      .fma_power_w = 16.0,
      .stall_power_w = 4.0,
      .idle_power_w = 1.5,
  };
  // Flat on-device hierarchy: a per-CU scratchpad ("LDS") and one
  // shared device cache, both with wide 128 B lines.
  m.caches = {
      machine::CacheLevelSpec{"LDS", 128u * 1024, false, 128, 0.012},
      machine::CacheLevelSpec{"L2", 16u * 1024 * 1024, true, 128, 0.030},
  };
  // HBM-class memory: 450 GB/s sustained at ~0.25 nJ/B (stacked DRAM
  // moves bytes much cheaper than a socketed DIMM), 16 GiB capacity.
  // This is the machine-balance inversion: 1.7 flops/byte against the
  // Haswell's ~20 — bandwidth-rich where the paper's box is
  // compute-rich, which is what moves the Eq (9) crossover on-device.
  m.memory = machine::MemorySpec{
      .bandwidth_bytes_per_s = 450e9,
      .latency_s = 300e-9,
      .energy_per_byte_nj = 0.25,
      .capacity_bytes = 16ull * 1024 * 1024 * 1024,
  };
  // Device floor: PP0 covers the compute die's leakage, uncore the
  // HBM PHYs, regulators and board overhead of the modeled card.
  m.power = machine::PowerSpec{.pp0_static_w = 12.0,
                               .uncore_static_w = 18.0};
  // Kernel-launch-scale dispatch overheads, well above the host's.
  m.task_spawn_overhead_s = 1e-6;
  m.sync_overhead_s = 4e-6;
  return m;
}

}  // namespace capow::backend
