#include "capow/sim/executor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace capow::sim {

namespace {

constexpr std::size_t kPkg =
    static_cast<std::size_t>(machine::PowerPlane::kPackage);
constexpr std::size_t kPp0 =
    static_cast<std::size_t>(machine::PowerPlane::kPP0);
constexpr std::size_t kDram =
    static_cast<std::size_t>(machine::PowerPlane::kDram);

void validate_phase(const PhaseCost& ph) {
  if (ph.flops < 0 || ph.dram_bytes < 0 || ph.cache_bytes < 0) {
    throw std::invalid_argument("simulate: negative phase cost in '" +
                                ph.label + "'");
  }
  if (ph.efficiency <= 0.0 || ph.efficiency > 1.0) {
    throw std::invalid_argument("simulate: efficiency outside (0,1] in '" +
                                ph.label + "'");
  }
  if (ph.imbalance < 1.0) {
    throw std::invalid_argument("simulate: imbalance < 1 in '" + ph.label +
                                "'");
  }
  if (ph.parallelism == 0) {
    throw std::invalid_argument("simulate: zero parallelism in '" +
                                ph.label + "'");
  }
}

PhaseResult simulate_phase(const machine::MachineSpec& spec,
                           const PhaseCost& ph, unsigned threads) {
  validate_phase(ph);
  PhaseResult r;
  r.label = ph.label;
  const unsigned p =
      std::min({ph.parallelism, threads, spec.core_count});
  r.active_cores = p;

  const double per_core = spec.per_core_peak_flops() * ph.efficiency;
  r.compute_seconds =
      ph.flops > 0.0 ? ph.flops * ph.imbalance / (per_core * p) : 0.0;
  r.memory_seconds =
      ph.dram_bytes > 0.0
          ? ph.dram_bytes / spec.memory.bandwidth_bytes_per_s
          : 0.0;
  r.overhead_seconds =
      static_cast<double>(ph.sync_events) * spec.sync_overhead_s +
      static_cast<double>(ph.spawn_events) * spec.task_spawn_overhead_s;

  const double work = std::max(r.compute_seconds, r.memory_seconds);
  r.seconds = work + r.overhead_seconds;
  if (r.seconds <= 0.0) {
    r.utilization = 0.0;
    return r;
  }
  r.utilization = std::clamp(r.compute_seconds / r.seconds, 0.0, 1.0);

  const auto& core = spec.core;
  const double per_core_dyn =
      (1.0 - r.utilization) * core.stall_power_w +
      r.utilization * core.active_power_w(ph.efficiency);
  // Unused cores keep clocking (power saving is disabled on the modeled
  // platform) and draw the idle floor.
  const double idle = (spec.core_count - p) * core.idle_power_w;
  const double pp0 = spec.power.pp0_static_w + p * per_core_dyn + idle;

  const double mem_w =
      ph.dram_bytes / r.seconds * spec.memory.energy_per_byte_nj * 1e-9;
  const double llc_nj =
      spec.caches.empty() ? 0.0 : spec.caches.back().energy_per_byte_nj;
  const double cache_w = ph.cache_bytes / r.seconds * llc_nj * 1e-9;

  r.power_w[kPp0] = pp0;
  r.power_w[kPkg] = pp0 + spec.power.uncore_static_w + mem_w + cache_w;
  r.power_w[kDram] = mem_w;
  for (std::size_t i = 0; i < machine::kPowerPlaneCount; ++i) {
    r.energy_j[i] = r.power_w[i] * r.seconds;
  }
  return r;
}

}  // namespace

RunResult simulate(const machine::MachineSpec& spec,
                   const WorkProfile& profile, unsigned threads,
                   rapl::SimulatedMsrDevice* msr) {
  if (threads == 0) {
    throw std::invalid_argument("simulate: threads must be >= 1");
  }
  spec.validate();

  RunResult run;
  run.phases.reserve(profile.phases.size());
  for (const auto& ph : profile.phases) {
    PhaseResult pr = simulate_phase(spec, ph, threads);
    run.seconds += pr.seconds;
    for (std::size_t i = 0; i < machine::kPowerPlaneCount; ++i) {
      run.energy_j[i] += pr.energy_j[i];
    }
    if (msr != nullptr) {
      msr->deposit(machine::PowerPlane::kPackage, pr.energy_j[kPkg]);
      msr->deposit(machine::PowerPlane::kPP0, pr.energy_j[kPp0]);
      msr->deposit(machine::PowerPlane::kDram, pr.energy_j[kDram]);
    }
    run.phases.push_back(std::move(pr));
  }
  return run;
}

RunResult simulate_capped(const machine::MachineSpec& spec,
                          const WorkProfile& profile, unsigned threads,
                          double cap_watts,
                          rapl::SimulatedMsrDevice* msr) {
  if (cap_watts <= 0.0) {
    throw std::invalid_argument("simulate_capped: cap must be > 0");
  }
  RunResult run = simulate(spec, profile, threads, nullptr);
  RunResult capped;
  capped.phases.reserve(run.phases.size());
  for (PhaseResult pr : run.phases) {
    if (pr.power_w[kPkg] > cap_watts && pr.seconds > 0.0) {
      // Static floor of this phase: plane statics plus idle cores.
      const double idle =
          (spec.core_count - pr.active_cores) * spec.core.idle_power_w;
      const double static_pkg = spec.power.pp0_static_w +
                                spec.power.uncore_static_w + idle;
      if (cap_watts <= static_pkg) {
        throw std::invalid_argument(
            "simulate_capped: cap below the static power floor");
      }
      const double t_old = pr.seconds;
      const double dyn_energy =
          (pr.power_w[kPkg] - static_pkg) * t_old;
      const double t_new = dyn_energy / (cap_watts - static_pkg);
      const double dyn_scale = t_old / t_new;
      const double static_pp0 = spec.power.pp0_static_w + idle;
      pr.power_w[kPkg] = cap_watts;
      pr.power_w[kPp0] =
          static_pp0 + (pr.power_w[kPp0] - static_pp0) * dyn_scale;
      pr.power_w[kDram] *= dyn_scale;
      pr.seconds = t_new;
      for (std::size_t i = 0; i < machine::kPowerPlaneCount; ++i) {
        pr.energy_j[i] = pr.power_w[i] * t_new;
      }
    }
    capped.seconds += pr.seconds;
    for (std::size_t i = 0; i < machine::kPowerPlaneCount; ++i) {
      capped.energy_j[i] += pr.energy_j[i];
    }
    if (msr != nullptr) {
      msr->deposit(machine::PowerPlane::kPackage, pr.energy_j[kPkg]);
      msr->deposit(machine::PowerPlane::kPP0, pr.energy_j[kPp0]);
      msr->deposit(machine::PowerPlane::kDram, pr.energy_j[kDram]);
    }
    capped.phases.push_back(std::move(pr));
  }
  return capped;
}

void simulate_idle(const machine::MachineSpec& spec, double seconds,
                   rapl::SimulatedMsrDevice& msr) {
  if (seconds < 0.0) {
    throw std::invalid_argument("simulate_idle: negative duration");
  }
  const double pp0 = spec.power.pp0_static_w * seconds;
  const double pkg = pp0 + spec.power.uncore_static_w * seconds;
  msr.deposit(machine::PowerPlane::kPP0, pp0);
  msr.deposit(machine::PowerPlane::kPackage, pkg);
}

std::vector<PowerSample> simulate_with_sampling(
    const machine::MachineSpec& spec, const WorkProfile& profile,
    unsigned threads, double dt, RunResult* result) {
  if (dt <= 0.0) {
    throw std::invalid_argument("simulate_with_sampling: dt must be > 0");
  }
  RunResult run = simulate(spec, profile, threads, nullptr);

  rapl::SimulatedMsrDevice msr;
  rapl::RaplReader reader(msr);
  std::vector<PowerSample> samples;
  double t = 0.0;
  double prev_pkg = 0.0;
  double prev_pp0 = 0.0;
  for (const auto& ph : run.phases) {
    double remaining = ph.seconds;
    while (remaining > 0.0) {
      const double step = std::min(dt, remaining);
      msr.deposit(machine::PowerPlane::kPackage, ph.power_w[kPkg] * step);
      msr.deposit(machine::PowerPlane::kPP0, ph.power_w[kPp0] * step);
      msr.deposit(machine::PowerPlane::kDram, ph.power_w[kDram] * step);
      t += step;
      remaining -= step;
      const double pkg_j = reader.energy_joules(machine::PowerPlane::kPackage);
      const double pp0_j = reader.energy_joules(machine::PowerPlane::kPP0);
      samples.push_back(PowerSample{
          .t_seconds = t,
          .package_w = (pkg_j - prev_pkg) / step,
          .pp0_w = (pp0_j - prev_pp0) / step,
      });
      prev_pkg = pkg_j;
      prev_pp0 = pp0_j;
    }
  }
  if (result != nullptr) *result = std::move(run);
  return samples;
}

}  // namespace capow::sim
