// Work profiles: the interface between algorithms and the simulator.
//
// Each algorithm describes one execution as an ordered list of phases
// (e.g. Strassen: "quadrant additions" then "base-case products" per
// recursion level). A phase carries total flops, total DRAM traffic, the
// degree of parallelism available in it, and the efficiency its kernel
// attains — everything the roofline-with-contention executor needs to
// derive time and power. Profiles come from two sources that tests
// cross-validate:
//   * closed-form cost models (blas/strassen/capsalg cost_model.hpp), and
//   * measured trace::Recorder counters from real instrumented runs
//     (profile_from_recorder below).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "capow/trace/counters.hpp"

namespace capow::sim {

/// One homogeneous stage of an execution.
struct PhaseCost {
  std::string label;
  double flops = 0.0;        ///< total floating-point operations
  double dram_bytes = 0.0;   ///< total DRAM read+write traffic
  double cache_bytes = 0.0;  ///< on-chip (LLC) traffic
  unsigned parallelism = 1;  ///< units that can work concurrently
  double efficiency = 1.0;   ///< fraction of per-core peak attained
  double imbalance = 1.0;    ///< critical-path stretch factor (>= 1)
  std::uint64_t sync_events = 0;   ///< barriers / task joins
  std::uint64_t spawn_events = 0;  ///< tasks created
};

/// An ordered sequence of phases describing a complete run.
struct WorkProfile {
  std::string name;
  std::vector<PhaseCost> phases;

  double total_flops() const noexcept;
  double total_dram_bytes() const noexcept;
  std::uint64_t total_syncs() const noexcept;

  /// Appends a phase (fluent style for cost-model builders).
  WorkProfile& add(PhaseCost phase);
};

/// Builds a two-phase profile (sequential slot + parallel slots) from
/// measured per-thread counters. `efficiency` is the kernel efficiency
/// to assume for the compute roofline; imbalance is derived from the
/// max-vs-mean flops across parallel slots, matching Eq (2)'s
/// max-over-units semantics.
WorkProfile profile_from_recorder(const trace::Recorder& rec,
                                  std::string name, double efficiency);

/// Phase-aware variant: when the instrumented code marked sections with
/// trace::PhaseScope, each recorded phase becomes its own
/// sequential/parallel PhaseCost pair (so e.g. a Strassen run's
/// addition passes and base products keep their distinct roofline
/// behaviour in the simulation). Phases appear in registration order;
/// the default phase (index 0) comes first when non-empty.
WorkProfile profile_from_recorder_phases(const trace::Recorder& rec,
                                         std::string name,
                                         double efficiency);

}  // namespace capow::sim
