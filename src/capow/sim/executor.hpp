// The roofline-with-contention execution model.
//
// For each phase of a WorkProfile, running with `threads` workers on a
// MachineSpec:
//
//   p      = min(phase.parallelism, threads, cores)
//   Tcomp  = flops * imbalance / (p * per_core_peak * efficiency)
//   Tmem   = dram_bytes / memory_bandwidth          (shared resource!)
//   Twork  = max(Tcomp, Tmem)                        (overlap roofline)
//   T      = Twork + sync/spawn overheads
//   u      = Tcomp / T                               (core utilization)
//
// Power while the phase runs:
//
//   core    = (1-u)*stall_w + u*(busy_w + fma_w*efficiency)
//   PP0     = pp0_static + p * core
//   PACKAGE = PP0 + uncore_static + cache_power + memory_power
//   DRAM    = memory_power (DIMM-side estimate)
//
// where memory_power = dram_bytes / T * energy_per_byte.
//
// This is where the paper's qualitative results come from: a
// compute-bound kernel keeps u ~= 1, so each added worker raises PP0 by
// the full active_w (near-linear power growth — the OpenBLAS curves in
// Fig 4 and its superlinear EP scaling in Fig 7); a bandwidth-bound
// phase's Tmem does not shrink with p, so utilization falls as workers
// are added and power saturates (the Strassen/CAPS curves of Figs 5-6).
#pragma once

#include <array>
#include <string>
#include <vector>

#include "capow/machine/machine.hpp"
#include "capow/rapl/msr.hpp"
#include "capow/sim/cost_profile.hpp"

namespace capow::sim {

/// Per-phase simulation outcome.
struct PhaseResult {
  std::string label;
  double seconds = 0.0;
  double compute_seconds = 0.0;   ///< Tcomp (per-core critical path)
  double memory_seconds = 0.0;    ///< Tmem
  double overhead_seconds = 0.0;  ///< spawn + sync
  double utilization = 0.0;       ///< u in [0, 1]
  unsigned active_cores = 0;      ///< p
  std::array<double, machine::kPowerPlaneCount> power_w{};
  std::array<double, machine::kPowerPlaneCount> energy_j{};
};

/// Whole-run simulation outcome.
struct RunResult {
  double seconds = 0.0;
  std::array<double, machine::kPowerPlaneCount> energy_j{};
  std::vector<PhaseResult> phases;

  double energy(machine::PowerPlane p) const noexcept {
    return energy_j[static_cast<std::size_t>(p)];
  }
  /// Time-averaged power on a plane over the run — the EAvg term of
  /// Eq (1) as the paper measures it (energy delta / wall time).
  double avg_power_w(machine::PowerPlane p) const noexcept {
    return seconds > 0.0 ? energy(p) / seconds : 0.0;
  }
};

/// Simulates `profile` with `threads` workers on `spec`. When `msr` is
/// non-null, each phase's plane energies are deposited into it so that
/// RAPL clients observe the run. Throws std::invalid_argument for
/// threads == 0 or an invalid spec/profile (negative costs,
/// efficiency outside (0, 1], imbalance < 1).
RunResult simulate(const machine::MachineSpec& spec,
                   const WorkProfile& profile, unsigned threads,
                   rapl::SimulatedMsrDevice* msr = nullptr);

/// Simulates under a RAPL-style package power cap: phases whose package
/// power would exceed `cap_watts` are throttled — their dynamic energy
/// is spread over a longer interval so that average package power sits
/// exactly at the cap (first-order RAPL PL1 behaviour). Static power
/// keeps burning during the stretched time, so capping *costs energy*
/// as well as time. Throws std::invalid_argument when the cap is not
/// above the phase's static floor.
RunResult simulate_capped(const machine::MachineSpec& spec,
                          const WorkProfile& profile, unsigned threads,
                          double cap_watts,
                          rapl::SimulatedMsrDevice* msr = nullptr);

/// Deposits `seconds` of idle (static power only) energy — the harness
/// uses this to model the paper's 60 s quiesce sleep between tests.
void simulate_idle(const machine::MachineSpec& spec, double seconds,
                   rapl::SimulatedMsrDevice& msr);

/// One timestamped power sample.
struct PowerSample {
  double t_seconds;
  double package_w;
  double pp0_w;
};

/// Replays `profile` in `dt`-sized steps, depositing energy into a fresh
/// MSR device and sampling it through a RaplReader after each step —
/// i.e. exactly the measurement loop a PAPI-based power monitor runs.
/// Returns the sampled trace; `result` (optional) receives the aggregate.
std::vector<PowerSample> simulate_with_sampling(
    const machine::MachineSpec& spec, const WorkProfile& profile,
    unsigned threads, double dt, RunResult* result = nullptr);

}  // namespace capow::sim
