#include "capow/sim/cost_profile.hpp"

#include <algorithm>

namespace capow::sim {

double WorkProfile::total_flops() const noexcept {
  double t = 0.0;
  for (const auto& p : phases) t += p.flops;
  return t;
}

double WorkProfile::total_dram_bytes() const noexcept {
  double t = 0.0;
  for (const auto& p : phases) t += p.dram_bytes;
  return t;
}

std::uint64_t WorkProfile::total_syncs() const noexcept {
  std::uint64_t t = 0;
  for (const auto& p : phases) t += p.sync_events;
  return t;
}

WorkProfile& WorkProfile::add(PhaseCost phase) {
  phases.push_back(std::move(phase));
  return *this;
}

namespace {

// Appends up to two PhaseCosts (sequential slot, parallel slots) built
// from one set of counters.
void append_split(WorkProfile& wp, const trace::CostCounters& seq,
                  const std::vector<trace::CostCounters>& par,
                  const std::string& label_prefix, double efficiency) {
  if (seq.flops > 0 || seq.dram_bytes() > 0) {
    wp.add(PhaseCost{
        .label = label_prefix + "sequential",
        .flops = static_cast<double>(seq.flops),
        .dram_bytes = static_cast<double>(seq.dram_bytes()),
        .cache_bytes = static_cast<double>(seq.cache_bytes),
        .parallelism = 1,
        .efficiency = efficiency,
        .imbalance = 1.0,
        .sync_events = seq.syncs,
        .spawn_events = seq.tasks_spawned,
    });
  }
  if (!par.empty()) {
    trace::CostCounters sum;
    std::uint64_t max_flops = 0;
    for (const auto& c : par) {
      sum += c;
      max_flops = std::max(max_flops, c.flops);
    }
    const double mean_flops =
        static_cast<double>(sum.flops) / static_cast<double>(par.size());
    const double imbalance =
        (mean_flops > 0.0) ? static_cast<double>(max_flops) / mean_flops
                           : 1.0;
    wp.add(PhaseCost{
        .label = label_prefix + "parallel",
        .flops = static_cast<double>(sum.flops),
        .dram_bytes = static_cast<double>(sum.dram_bytes()),
        .cache_bytes = static_cast<double>(sum.cache_bytes),
        .parallelism = static_cast<unsigned>(par.size()),
        .efficiency = efficiency,
        .imbalance = std::max(imbalance, 1.0),
        .sync_events = sum.syncs,
        .spawn_events = sum.tasks_spawned,
    });
  }
}

}  // namespace

WorkProfile profile_from_recorder_phases(const trace::Recorder& rec,
                                         std::string name,
                                         double efficiency) {
  WorkProfile wp;
  wp.name = std::move(name);
  for (std::size_t p = 0; p < rec.phase_count(); ++p) {
    const std::string& pname = rec.phase_name(p);
    const std::string prefix =
        pname.empty() ? std::string{} : pname + "/";
    trace::CostCounters seq = rec.cell(0, p);
    append_split(wp, seq, rec.phase_parallel_slots(p), prefix, efficiency);
  }
  return wp;
}

WorkProfile profile_from_recorder(const trace::Recorder& rec,
                                  std::string name, double efficiency) {
  WorkProfile wp;
  wp.name = std::move(name);

  const trace::CostCounters seq = rec.slot(0);
  if (seq.flops > 0 || seq.dram_bytes() > 0) {
    wp.add(PhaseCost{
        .label = "sequential",
        .flops = static_cast<double>(seq.flops),
        .dram_bytes = static_cast<double>(seq.dram_bytes()),
        .cache_bytes = static_cast<double>(seq.cache_bytes),
        .parallelism = 1,
        .efficiency = efficiency,
        .imbalance = 1.0,
        .sync_events = seq.syncs,
        .spawn_events = seq.tasks_spawned,
    });
  }

  const auto par = rec.parallel_slots();
  if (!par.empty()) {
    trace::CostCounters sum;
    std::uint64_t max_flops = 0;
    for (const auto& c : par) {
      sum += c;
      max_flops = std::max(max_flops, c.flops);
    }
    const double mean_flops =
        static_cast<double>(sum.flops) / static_cast<double>(par.size());
    const double imbalance =
        (mean_flops > 0.0) ? static_cast<double>(max_flops) / mean_flops
                           : 1.0;
    wp.add(PhaseCost{
        .label = "parallel",
        .flops = static_cast<double>(sum.flops),
        .dram_bytes = static_cast<double>(sum.dram_bytes()),
        .cache_bytes = static_cast<double>(sum.cache_bytes),
        .parallelism = static_cast<unsigned>(par.size()),
        .efficiency = efficiency,
        .imbalance = std::max(imbalance, 1.0),
        .sync_events = sum.syncs,
        .spawn_events = sum.tasks_spawned,
    });
  }
  return wp;
}

}  // namespace capow::sim
