#include "capow/abft/checksum.hpp"

namespace capow::abft {
namespace {

// One binary carries a baseline and an AVX2 compile of every O(n^2)
// sweep, dispatched once per process — the same scheme as the gemm
// microkernels. The bodies are always_inline plain loops, so each ISA
// clone auto-vectorizes them under its own target attribute. The AVX2
// clones deliberately exclude FMA: with identical lane counts and no
// contraction, both paths round identically, so checksums do not
// depend on which CPU computed them.
bool use_avx2() noexcept {
  static const bool ok = __builtin_cpu_supports("avx2") != 0;
  return ok;
}

__attribute__((always_inline)) inline void col_sums_body(
    linalg::ConstMatrixView a, double* out, double* mag) {
  const std::size_t rows = a.rows();
  const std::size_t cols = a.cols();
  for (std::size_t j = 0; j < cols; ++j) out[j] = mag[j] = 0.0;
  for (std::size_t i = 0; i < rows; ++i) {
    const double* row = a.row(i);
    for (std::size_t j = 0; j < cols; ++j) {
      out[j] += row[j];
      mag[j] += std::fabs(row[j]);
    }
  }
}

// A row sum is one long serial reduction; splitting it over kLanes
// independent accumulators lets the adds pipeline and vectorize. The
// lane count is fixed, not ISA-dependent, so every clone reduces in
// the same order.
constexpr std::size_t kLanes = 8;

__attribute__((always_inline)) inline void row_sums_body(
    linalg::ConstMatrixView a, double* out, double* mag) {
  const std::size_t rows = a.rows();
  const std::size_t cols = a.cols();
  for (std::size_t i = 0; i < rows; ++i) {
    const double* row = a.row(i);
    double s[kLanes] = {}, m[kLanes] = {};
    std::size_t j = 0;
    for (; j + kLanes <= cols; j += kLanes) {
      for (std::size_t l = 0; l < kLanes; ++l) {
        s[l] += row[j + l];
        m[l] += std::fabs(row[j + l]);
      }
    }
    double sum = 0.0, mg = 0.0;
    for (std::size_t l = 0; l < kLanes; ++l) {
      sum += s[l];
      mg += m[l];
    }
    for (; j < cols; ++j) {
      sum += row[j];
      mg += std::fabs(row[j]);
    }
    out[i] = sum;
    mag[i] = mg;
  }
}

__attribute__((always_inline)) inline void guard_row_refs_body(
    linalg::ConstMatrixView a, const double* rb, const double* rbmag,
    double* ca, double* camag, double* rref, double* rmag) {
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  for (std::size_t t = 0; t < k; ++t) ca[t] = camag[t] = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    const double* arow = a.row(i);
    double rs[kLanes] = {}, rm[kLanes] = {};
    std::size_t t = 0;
    for (; t + kLanes <= k; t += kLanes) {
      for (std::size_t l = 0; l < kLanes; ++l) {
        const double v = arow[t + l];
        ca[t + l] += v;
        camag[t + l] += std::fabs(v);
        rs[l] += v * rb[t + l];
        rm[l] += std::fabs(v) * rbmag[t + l];
      }
    }
    double ref = 0.0, mg = 0.0;
    for (std::size_t l = 0; l < kLanes; ++l) {
      ref += rs[l];
      mg += rm[l];
    }
    for (; t < k; ++t) {
      const double v = arow[t];
      ca[t] += v;
      camag[t] += std::fabs(v);
      ref += v * rb[t];
      mg += std::fabs(v) * rbmag[t];
    }
    rref[i] = ref;
    rmag[i] = mg;
  }
}

__attribute__((always_inline)) inline void guard_col_refs_body(
    linalg::ConstMatrixView b, const double* ca, const double* camag,
    double* cref, double* cmag) {
  const std::size_t k = b.rows();
  const std::size_t n = b.cols();
  for (std::size_t j = 0; j < n; ++j) cref[j] = cmag[j] = 0.0;
  for (std::size_t t = 0; t < k; ++t) {
    const double* brow = b.row(t);
    const double cat = ca[t];
    const double camt = camag[t];
    for (std::size_t j = 0; j < n; ++j) {
      cref[j] += cat * brow[j];
      cmag[j] += camt * std::fabs(brow[j]);
    }
  }
}

__attribute__((always_inline)) inline void matrix_sums_body(
    linalg::ConstMatrixView c, double* row_out, double* col_out) {
  const std::size_t m = c.rows();
  const std::size_t n = c.cols();
  for (std::size_t j = 0; j < n; ++j) col_out[j] = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    const double* crow = c.row(i);
    double s[kLanes] = {};
    std::size_t j = 0;
    for (; j + kLanes <= n; j += kLanes) {
      for (std::size_t l = 0; l < kLanes; ++l) {
        const double v = crow[j + l];
        col_out[j + l] += v;
        s[l] += v;
      }
    }
    double sum = 0.0;
    for (std::size_t l = 0; l < kLanes; ++l) sum += s[l];
    for (; j < n; ++j) {
      col_out[j] += crow[j];
      sum += crow[j];
    }
    row_out[i] = sum;
  }
}

void col_sums_generic(linalg::ConstMatrixView a, double* out,
                      double* mag) {
  col_sums_body(a, out, mag);
}
__attribute__((target("avx2"))) void col_sums_avx2(
    linalg::ConstMatrixView a, double* out, double* mag) {
  col_sums_body(a, out, mag);
}

void row_sums_generic(linalg::ConstMatrixView a, double* out,
                      double* mag) {
  row_sums_body(a, out, mag);
}
__attribute__((target("avx2"))) void row_sums_avx2(
    linalg::ConstMatrixView a, double* out, double* mag) {
  row_sums_body(a, out, mag);
}

void guard_row_refs_generic(linalg::ConstMatrixView a, const double* rb,
                            const double* rbmag, double* ca,
                            double* camag, double* rref, double* rmag) {
  guard_row_refs_body(a, rb, rbmag, ca, camag, rref, rmag);
}
__attribute__((target("avx2"))) void guard_row_refs_avx2(
    linalg::ConstMatrixView a, const double* rb, const double* rbmag,
    double* ca, double* camag, double* rref, double* rmag) {
  guard_row_refs_body(a, rb, rbmag, ca, camag, rref, rmag);
}

void guard_col_refs_generic(linalg::ConstMatrixView b, const double* ca,
                            const double* camag, double* cref,
                            double* cmag) {
  guard_col_refs_body(b, ca, camag, cref, cmag);
}
__attribute__((target("avx2"))) void guard_col_refs_avx2(
    linalg::ConstMatrixView b, const double* ca, const double* camag,
    double* cref, double* cmag) {
  guard_col_refs_body(b, ca, camag, cref, cmag);
}

void matrix_sums_generic(linalg::ConstMatrixView c, double* row_out,
                         double* col_out) {
  matrix_sums_body(c, row_out, col_out);
}
__attribute__((target("avx2"))) void matrix_sums_avx2(
    linalg::ConstMatrixView c, double* row_out, double* col_out) {
  matrix_sums_body(c, row_out, col_out);
}

}  // namespace

void col_sums(linalg::ConstMatrixView a, double* out, double* mag) {
  use_avx2() ? col_sums_avx2(a, out, mag)
             : col_sums_generic(a, out, mag);
}

void row_sums(linalg::ConstMatrixView a, double* out, double* mag) {
  use_avx2() ? row_sums_avx2(a, out, mag)
             : row_sums_generic(a, out, mag);
}

void guard_row_refs(linalg::ConstMatrixView a, const double* rb,
                    const double* rbmag, double* ca, double* camag,
                    double* rref, double* rmag) {
  use_avx2() ? guard_row_refs_avx2(a, rb, rbmag, ca, camag, rref, rmag)
             : guard_row_refs_generic(a, rb, rbmag, ca, camag, rref,
                                      rmag);
}

void guard_col_refs(linalg::ConstMatrixView b, const double* ca,
                    const double* camag, double* cref, double* cmag) {
  use_avx2() ? guard_col_refs_avx2(b, ca, camag, cref, cmag)
             : guard_col_refs_generic(b, ca, camag, cref, cmag);
}

void matrix_sums(linalg::ConstMatrixView c, double* row_out,
                 double* col_out) {
  use_avx2() ? matrix_sums_avx2(c, row_out, col_out)
             : matrix_sums_generic(c, row_out, col_out);
}

double payload_checksum(const double* data, std::size_t count) noexcept {
  NeumaierAcc acc;
  for (std::size_t i = 0; i < count; ++i) acc.add(data[i]);
  return acc.value();
}

}  // namespace capow::abft
