#include "capow/abft/abft.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>

#include "capow/abft/checksum.hpp"
#include "capow/telemetry/telemetry.hpp"

namespace capow::abft {

namespace {

std::atomic<std::uint64_t> g_verifications{0};
std::atomic<std::uint64_t> g_detected{0};
std::atomic<std::uint64_t> g_corrected{0};
std::atomic<std::uint64_t> g_recomputed{0};
std::atomic<std::uint64_t> g_retried{0};

// Distinct anchor coordinates of the blocks (of size `step`) covering
// the ascending index list `idx`.
std::vector<std::size_t> block_anchors(const std::vector<std::size_t>& idx,
                                       std::size_t step) {
  std::vector<std::size_t> out;
  for (std::size_t v : idx) {
    const std::size_t a = (v / step) * step;
    if (out.empty() || out.back() != a) out.push_back(a);
  }
  return out;
}

std::string describe(const VerifyReport& rep) {
  return std::to_string(rep.bad_rows.size()) + " damaged row sum(s), " +
         std::to_string(rep.bad_cols.size()) +
         " damaged column sum(s), worst residual " +
         std::to_string(rep.max_residual) + "x tolerance";
}

}  // namespace

const char* to_string(AbftMode m) noexcept {
  switch (m) {
    case AbftMode::kOff:
      return "off";
    case AbftMode::kDetect:
      return "detect";
    case AbftMode::kCorrect:
      return "correct";
  }
  return "off";
}

std::optional<AbftMode> parse_mode(const std::string& text) noexcept {
  if (text == "off") return AbftMode::kOff;
  if (text == "detect") return AbftMode::kDetect;
  if (text == "correct") return AbftMode::kCorrect;
  return std::nullopt;
}

AbftMode resolve_mode(const AbftConfig& cfg) {
  if (cfg.mode) return *cfg.mode;
  const char* env = std::getenv("CAPOW_ABFT");
  if (env == nullptr || *env == '\0') return AbftMode::kOff;
  const std::optional<AbftMode> m = parse_mode(env);
  if (!m) {
    throw std::invalid_argument(std::string("CAPOW_ABFT: unknown mode '") +
                                env + "' (expected off, detect, or correct)");
  }
  return *m;
}

AbftCounters counters() noexcept {
  AbftCounters out;
  out.verifications = g_verifications.load(std::memory_order_relaxed);
  out.detected = g_detected.load(std::memory_order_relaxed);
  out.corrected = g_corrected.load(std::memory_order_relaxed);
  out.recomputed = g_recomputed.load(std::memory_order_relaxed);
  out.retried = g_retried.load(std::memory_order_relaxed);
  return out;
}

void reset_counters() noexcept {
  g_verifications.store(0, std::memory_order_relaxed);
  g_detected.store(0, std::memory_order_relaxed);
  g_corrected.store(0, std::memory_order_relaxed);
  g_recomputed.store(0, std::memory_order_relaxed);
  g_retried.store(0, std::memory_order_relaxed);
}

void record_detected(std::uint64_t n) noexcept {
  g_detected.fetch_add(n, std::memory_order_relaxed);
}

void record_corrected(std::uint64_t n) noexcept {
  g_corrected.fetch_add(n, std::memory_order_relaxed);
}

void record_recomputed(std::uint64_t n) noexcept {
  g_recomputed.fetch_add(n, std::memory_order_relaxed);
}

void record_retried(std::uint64_t n) noexcept {
  g_retried.fetch_add(n, std::memory_order_relaxed);
}

AbftGuard::AbftGuard(linalg::ConstMatrixView a, linalg::ConstMatrixView b,
                     blas::WorkspaceArena& arena, double tolerance)
    : a_(a),
      b_(b),
      arena_(&arena),
      tolerance_(tolerance),
      m_(a.rows()),
      k_(a.cols()),
      n_(b.cols()),
      sums_(arena.acquire(4 * a.cols() + 2 * a.rows() + 2 * b.cols())) {
  if (b.rows() != k_) {
    throw std::invalid_argument(
        "abft: guard operands' inner dimensions disagree");
  }
  CAPOW_TSPAN_ARGS2("abft.checksum", "abft", "m", m_, "n", n_);
  // Layout: the operand checksums, then the fully reduced reference
  // sums C must reproduce. Building the references here (one fused
  // pass over A, one over B) is what lets verify() touch nothing but
  // C — and makes re-verification after a recovery step O(m n) flat.
  double* ca = sums_.data();
  double* camag = ca + k_;
  double* rb = ca + 2 * k_;
  double* rbmag = ca + 3 * k_;
  double* rref = ca + 4 * k_;        // A·(B e), m entries
  double* rmag = rref + m_;          // Σ_t |a(i,t)|·rbmag[t]
  double* cref = rref + 2 * m_;      // (e^T A)·B, n entries
  double* cmag = rref + 2 * m_ + n_; // Σ_t camag[t]·|b(t,j)|

  // Three operand streams total (B for its row sums, A fused, B for the
  // column references — the cross dependency ca <-> rb makes a fourth
  // stream unavoidable only for C, paid in verify()).
  row_sums(b_, rb, rbmag);
  guard_row_refs(a_, rb, rbmag, ca, camag, rref, rmag);
  guard_col_refs(b_, ca, camag, cref, cmag);
}

VerifyReport AbftGuard::verify(linalg::ConstMatrixView c) const {
  if (c.rows() != m_ || c.cols() != n_) {
    throw std::invalid_argument("abft: verified matrix shape mismatch");
  }
  CAPOW_TSPAN_ARGS2("abft.verify", "abft", "m", m_, "n", n_);
  VerifyReport rep;
  const double* rref = sums_.data() + 4 * k_;
  const double* rmag = rref + m_;
  const double* cref = rref + 2 * m_;
  const double* cmag = rref + 2 * m_ + n_;

  // The references were reduced at construction, so verification is one
  // streamed pass over C (its row and column sums together), then O(m+n)
  // scalar comparisons.
  blas::WorkspaceCheckout scratch = arena_->acquire(m_ + n_);
  double* row_act = scratch.data();
  double* col_act = row_act + m_;
  matrix_sums(c, row_act, col_act);
  for (std::size_t i = 0; i < m_; ++i) {
    const double residual = std::fabs(rref[i] - row_act[i]);
    const double scale = tolerance_ * std::max(rmag[i], 1.0);
    rep.max_residual = std::max(rep.max_residual, residual / scale);
    if (residual > scale) rep.bad_rows.push_back(i);
  }
  for (std::size_t j = 0; j < n_; ++j) {
    const double residual = std::fabs(cref[j] - col_act[j]);
    const double scale = tolerance_ * std::max(cmag[j], 1.0);
    rep.max_residual = std::max(rep.max_residual, residual / scale);
    if (residual > scale) rep.bad_cols.push_back(j);
  }

  rep.ok = rep.bad_rows.empty() && rep.bad_cols.empty();
  g_verifications.fetch_add(1, std::memory_order_relaxed);
  if (!rep.ok) g_detected.fetch_add(1, std::memory_order_relaxed);
  return rep;
}

void guarded_gemm(linalg::ConstMatrixView a, linalg::ConstMatrixView b,
                  linalg::MatrixView c, const blas::GemmOptions& opts,
                  const AbftConfig& cfg) {
  const AbftMode mode = resolve_mode(cfg);
  if (mode == AbftMode::kOff) {
    blas::gemm(a, b, c, opts);
    return;
  }

  // Pin the resolved kernel + blocking so every recompute sub-sweep
  // replays the exact floating-point schedule of the original call.
  blas::GemmOptions pinned = opts;
  pinned.kernel = blas::resolve_kernel(opts).id;
  pinned.blocking = blas::resolve_blocking(opts);
  blas::WorkspaceArena& arena =
      opts.arena != nullptr ? *opts.arena : blas::active_arena();
  pinned.arena = &arena;

  const AbftGuard guard(a, b, arena, cfg.tolerance);
  blas::gemm(a, b, c, pinned);
  VerifyReport rep = guard.verify(c);
  if (rep.ok) return;
  if (mode == AbftMode::kDetect) {
    throw AbftError("abft: silent corruption detected in gemm (" +
                    describe(rep) + ")");
  }

  const blas::BlockingParams& bp = *pinned.blocking;
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = b.cols();
  std::uint64_t salt_seq = 0;
  const auto next_salt = [&] {
    return fault::key(0xabf7u, opts.fault_salt, ++salt_seq);
  };
  // Recompute rows [i0, i0+rh) x cols [j0, j0+cw) through a sub-view
  // sweep anchored on the original block grid: identical packing,
  // identical microkernel tiles, bit-identical values.
  const auto recompute = [&](std::size_t i0, std::size_t rh, std::size_t j0,
                             std::size_t cw) {
    blas::GemmOptions sub = pinned;
    sub.fault_salt = next_salt();
    blas::gemm(a.block(i0, 0, rh, k), b.block(0, j0, k, cw),
               c.block(i0, j0, rh, cw), sub);
  };

  const std::vector<std::size_t> rblocks = block_anchors(rep.bad_rows, bp.mc);
  const std::vector<std::size_t> cpanels = block_anchors(rep.bad_cols, bp.nc);
  if (!rblocks.empty() && !cpanels.empty()) {
    // Row x column intersections localize the damage; a single
    // intersection is the classic single-element case, fixed in place
    // by recomputing just its covering rectangle.
    if (rblocks.size() == 1 && cpanels.size() == 1) {
      record_corrected();
    } else {
      record_recomputed();
    }
    for (std::size_t i0 : rblocks) {
      for (std::size_t j0 : cpanels) {
        recompute(i0, std::min(bp.mc, m - i0), j0, std::min(bp.nc, n - j0));
      }
    }
  } else {
    // Damage visible on one axis only (sums cancelled on the other):
    // recompute the whole damaged panels/blocks.
    record_recomputed();
    for (std::size_t j0 : cpanels) recompute(0, m, j0, std::min(bp.nc, n - j0));
    for (std::size_t i0 : rblocks) recompute(i0, std::min(bp.mc, m - i0), 0, n);
  }
  rep = guard.verify(c);
  if (rep.ok) return;

  for (int attempt = 0; attempt < cfg.max_retries; ++attempt) {
    record_retried();
    blas::GemmOptions retry = pinned;
    retry.fault_salt = next_salt();
    blas::gemm(a, b, c, retry);
    rep = guard.verify(c);
    if (rep.ok) return;
  }
  throw AbftError(
      "abft: gemm corruption survived localized recomputation and " +
      std::to_string(cfg.max_retries) + " full retries (" + describe(rep) +
      ")");
}

}  // namespace capow::abft
