// capow::abft — checksum-protected matmul: silent-data-corruption
// detection and online recovery (Huang–Abraham ABFT).
//
// PR 2 made the runtime survive *detected* faults (a corrupted message
// fails its link CRC and is retransmitted); nothing caught a *silent*
// flip in a packed panel, a quadrant temporary, or a received payload —
// the run completed and reported a wrong product with perfect
// telemetry. This module closes that gap: an AbftGuard snapshots the
// checksums of A and B (e^T A and B e, O(n^2)) before a multiply and
// afterwards verifies C's column sums against (e^T A)·B and its row
// sums against A·(B e). A corrupted element shows up in exactly one row
// sum and one column sum, so the row x column intersection localizes
// it; recovery then climbs a ladder of increasingly blunt instruments:
//
//   detect -> correct damaged block x panel rectangles in place ->
//   recompute whole damaged panels -> retry the full multiply ->
//   throw AbftError (the harness watchdog's bounded-retry territory).
//
// Every recovery step *re-runs the original floating-point schedule on
// the original operands* (pinned blocking for gemm sub-sweeps, the same
// recursion for Strassen/CAPS products) rather than patching values
// arithmetically: delta-patching is not bit-exact, and this repo's
// contract is that a corrected run is bit-identical to a fault-free
// one. Verification tolerance is relative to a compensated magnitude
// accumulator (see checksum.hpp), sitting ~4 orders above the
// algorithms' own rounding noise and ~3 below the smallest injected
// flip, so neither false positives nor masked faults occur in practice.
//
// Exercise the ladder deterministically with the mem.flip/compute.flip
// fault sites (CAPOW_FAULTS="seed=...,mem.flip=p,compute.flip=p") and
// select the mode per call via AbftConfig or process-wide via
// CAPOW_ABFT=off|detect|correct.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "capow/blas/blocked_gemm.hpp"
#include "capow/blas/workspace.hpp"
#include "capow/fault/fault.hpp"
#include "capow/linalg/matrix.hpp"

namespace capow::abft {

/// What a guarded multiply does about checksum mismatches.
enum class AbftMode {
  kOff = 0,  ///< no checksums, no verification (seed behavior)
  kDetect,   ///< verify and throw AbftError on corruption
  kCorrect,  ///< verify, localize, recompute, retry; throw only when
             ///< every rung of the ladder fails
};

/// "off", "detect", or "correct".
const char* to_string(AbftMode m) noexcept;

/// Inverse of to_string(); nullopt for unrecognized text.
std::optional<AbftMode> parse_mode(const std::string& text) noexcept;

/// Per-call ABFT configuration, threaded through MatmulOptions and the
/// algorithm option structs.
struct AbftConfig {
  /// Unset defers to the CAPOW_ABFT environment variable (the
  /// whole-stack switch, like CAPOW_KERNEL), then to kOff.
  std::optional<AbftMode> mode;
  /// Residuals are flagged above tolerance x Σ|terms|. The default sits
  /// between the algorithms' rounding noise (~1e-11 relative at paper
  /// sizes) and the smallest injected flip signal (~1e-4).
  double tolerance = 1e-7;
  /// Full re-run attempts after localized recomputation fails.
  int max_retries = 2;
};

/// Effective mode: explicit config, else CAPOW_ABFT, else kOff. Throws
/// std::invalid_argument when CAPOW_ABFT holds an unknown mode.
AbftMode resolve_mode(const AbftConfig& cfg);

/// Unrecoverable (or detect-mode) checksum failure.
class AbftError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Process-wide ABFT event counters (exported as capow_abft_* metrics).
/// For a fixed fault seed these totals are deterministic across reruns
/// — asserted by tests, same contract as fault::FaultCounters.
struct AbftCounters {
  std::uint64_t verifications = 0;  ///< checksum verifications run
  std::uint64_t detected = 0;       ///< verifications that found damage
  std::uint64_t corrected = 0;      ///< single-intersection in-place fixes
  std::uint64_t recomputed = 0;     ///< localized block/quadrant recomputes
  std::uint64_t retried = 0;        ///< full re-runs of a multiply

  std::uint64_t total() const noexcept {
    return verifications + detected + corrected + recomputed + retried;
  }
  bool operator==(const AbftCounters&) const = default;
};

AbftCounters counters() noexcept;
void reset_counters() noexcept;

/// Recovery layers record what they did about a detection. The detected
/// variant is for checks outside AbftGuard::verify (message checksums).
void record_detected(std::uint64_t n = 1) noexcept;
void record_corrected(std::uint64_t n = 1) noexcept;
void record_recomputed(std::uint64_t n = 1) noexcept;
void record_retried(std::uint64_t n = 1) noexcept;

/// Outcome of one checksum verification. The bad_* vectors are empty on
/// a clean verify (no allocation on the hot path) and list damaged
/// coordinates ascending otherwise.
struct VerifyReport {
  bool ok = true;
  std::vector<std::size_t> bad_rows;
  std::vector<std::size_t> bad_cols;
  /// Largest residual seen, relative to its tolerance scale: < 1 is
  /// within tolerance, an injected flip lands orders of magnitude above.
  double max_residual = 0.0;
};

/// Checksum-augmented view over one multiply's operands. Construction
/// snapshots e^T A and B e (plus |.| magnitudes) AND reduces the
/// reference products A·(B e) and (e^T A)·B into one arena lease, so
/// verify() streams only C — one fused pass computing its row and
/// column sums. That keeps re-verification after each recovery rung
/// O(mn) flat and is what holds detect-mode overhead under the 5% bar.
/// The operand views must stay alive and *unmodified between
/// construction and the computation being checked* — snapshot the guard
/// before injecting or risking corruption, or verification would bless
/// a consistent-but-wrong product.
class AbftGuard {
 public:
  /// Throws std::invalid_argument when the inner dimensions disagree.
  AbftGuard(linalg::ConstMatrixView a, linalg::ConstMatrixView b,
            blas::WorkspaceArena& arena, double tolerance);

  /// Verifies c ?= A·B via both checksum families. Scratch comes from
  /// the arena (zero-allocation when warm). Records one verification
  /// (plus one detection on failure) in the process counters.
  VerifyReport verify(linalg::ConstMatrixView c) const;

  double tolerance() const noexcept { return tolerance_; }

 private:
  linalg::ConstMatrixView a_;
  linalg::ConstMatrixView b_;
  blas::WorkspaceArena* arena_;
  double tolerance_;
  std::size_t m_, k_, n_;
  /// [ca, camag, rb, rbmag](k each) +
  /// [rref = A·(B e), rmag](m each) + [cref = (e^T A)·B, cmag](n each)
  blas::WorkspaceCheckout sums_;
};

/// True when an installed fault plan arms mem.flip/compute.flip — the
/// gate algorithms use to skip flip-injection calls entirely on clean
/// runs (their outputs must stay bit-identical to pre-ABFT behavior).
inline bool flips_armed() noexcept {
  const fault::FaultInjector* inj = fault::FaultInjector::active();
  return inj != nullptr && inj->plan().any_flip();
}

/// fault::maybe_flip over a matrix view (keeps call sites terse).
inline std::size_t inject_flip(fault::Site site, std::uint64_t block_key,
                               linalg::MatrixView v) noexcept {
  return fault::maybe_flip(site, block_key, v.data(), v.rows(), v.cols(),
                           v.ld());
}

/// blas::gemm wrapped in the full ABFT ladder. Off-mode is a plain
/// gemm() call. Detect/correct modes pin the resolved blocking so that
/// localized recomputation of a damaged mc-block x nc-panel rectangle
/// replays the identical floating-point schedule — the corrected result
/// is bit-identical to a fault-free run. Throws AbftError when the
/// damage survives localized recomputation and cfg.max_retries full
/// re-runs (or immediately in detect mode).
void guarded_gemm(linalg::ConstMatrixView a, linalg::ConstMatrixView b,
                  linalg::MatrixView c, const blas::GemmOptions& opts = {},
                  const AbftConfig& cfg = {});

}  // namespace capow::abft
