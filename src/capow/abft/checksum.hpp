// Checksum primitives for algorithm-based fault tolerance.
//
// Huang–Abraham ABFT protects C = A·B with two invariants that cost
// O(n^2) against the O(n^3) multiply: the column sums of C must equal
// (e^T A)·B and the row sums must equal A·(B e). Every checksum is
// paired with a magnitude accumulator Σ|terms| that scales the
// comparison tolerance: a residual is flagged only above
// tolerance x magnitude. The default tolerance (1e-7) sits ~5 orders
// above plain summation's worst-case rounding — n·eps ≈ 2e-13 of the
// magnitude at the paper's n = 2048 — and ~3 orders below the smallest
// injected flip (>= 25% of one element), so the O(n^2) sweeps need no
// compensation at all: they are plain lane-split sums with no
// data-dependent branches, and vectorize to memory bandwidth. That is
// what keeps detect-mode overhead in the low percent range against a
// 2n^3-flop multiply. Compensated summation (branch-free Knuth TwoSum,
// error independent of the summand count) is reserved for the one
// checksum compared with *zero* tolerance: the message payload word,
// where sender and receiver must agree bitwise.
#pragma once

#include <cmath>
#include <cstddef>

#include "capow/linalg/matrix.hpp"

namespace capow::abft {

/// Branch-free compensated-summation step on a (sum, compensation)
/// pair: Knuth's TwoSum error term instead of Neumaier's magnitude
/// test, so it is exact for *any* operand ordering and — having no
/// data-dependent branch — lets compilers vectorize loops over
/// independent accumulators (the shape of every O(n^2) checksum sweep).
inline void two_sum(double& sum, double& comp, double v) noexcept {
  const double t = sum + v;
  const double bv = t - sum;
  comp += (sum - (t - bv)) + (v - bv);
  sum = t;
}

/// One Neumaier-style compensated accumulator (running sum plus error
/// term, folded on read): value() is exact to ~1 ulp of the true sum
/// regardless of the number of summands.
struct NeumaierAcc {
  double sum = 0.0;
  double comp = 0.0;

  void add(double v) noexcept { two_sum(sum, comp, v); }

  double value() const noexcept { return sum + comp; }
};

/// Column checksums e^T A: out[j] = Σ_i a(i,j) and
/// mag[j] = Σ_i |a(i,j)|. Per-column accumulators are independent, so
/// the sweep vectorizes across j. Both arrays must hold a.cols()
/// doubles.
void col_sums(linalg::ConstMatrixView a, double* out, double* mag);

/// Row checksums A e: out[i] = Σ_j a(i,j) and mag[i] = Σ_j |a(i,j)|.
/// Each row is one serial reduction, split over independent lanes for
/// throughput. Both arrays must hold a.rows() doubles.
void row_sums(linalg::ConstMatrixView a, double* out, double* mag);

/// Fused guard-construction sweep over A (one stream): the column
/// checksums ca[t] = Σ_i a(i,t) / camag[t] = Σ_i |a(i,t)| and, dotted
/// against the caller-supplied row checksums of B (rb, rbmag — see
/// row_sums), the per-row references rref[i] = Σ_t a(i,t)·rb[t] and
/// magnitudes rmag[i] = Σ_t |a(i,t)|·rbmag[t].
void guard_row_refs(linalg::ConstMatrixView a, const double* rb,
                    const double* rbmag, double* ca, double* camag,
                    double* rref, double* rmag);

/// Guard-construction sweep over B (one stream): the per-column
/// references cref[j] = Σ_t ca[t]·b(t,j) and magnitudes
/// cmag[j] = Σ_t camag[t]·|b(t,j)| from A's column checksums.
void guard_col_refs(linalg::ConstMatrixView b, const double* ca,
                    const double* camag, double* cref, double* cmag);

/// Verification sweep: the row sums and column sums of C in one
/// stream. row_out must hold c.rows() doubles, col_out c.cols().
void matrix_sums(linalg::ConstMatrixView c, double* row_out,
                 double* col_out);

/// Compensated checksum over a contiguous payload in index order. Both
/// ends of a message sum in the same order, so sender and receiver
/// words compare *bitwise* equal on an intact payload — the end-to-end
/// check needs no tolerance.
double payload_checksum(const double* data, std::size_t count) noexcept;

}  // namespace capow::abft
