// Per-phase energy-performance: Eq (1) and Eq (5) applied to attributed
// spans instead of whole runs.
//
// The paper's Fig 7 classifies *runs* as ideal/superlinear by the EP
// scaling ratio S = EP_p / EP_1. With the attribution engine the same
// algebra applies per phase: a phase's EAvg is its attributed energy
// over its self time, its T is that self time, so EP_phase = EAvg / T
// — and sweeping thread counts yields a scaling series per phase. That
// localizes the paper's whole-run verdicts: a run can look ideal while
// one phase inside it scales superlinearly.
#pragma once

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "capow/core/ep_model.hpp"
#include "capow/profile/attribution.hpp"

namespace capow::profile {

/// One top-level phase's energy/performance numbers at a fixed degree
/// of parallelism.
struct PhaseEnergy {
  std::string phase;
  double seconds = 0.0;  ///< phase self time (wall)
  double watts = 0.0;    ///< attributed self energy / self time (EAvg)
  double ep = 0.0;       ///< Eq (1): watts / seconds
};

/// Extracts the top-level phases (the profile root's children) of one
/// run, on one plane. Phases with zero self time or zero attributed
/// energy are skipped (EP is undefined for them). Sorted by name.
std::vector<PhaseEnergy> phase_energies(const Profile& p, Plane plane);

/// One phase's Eq (5) scaling verdict across a thread sweep.
struct PhaseScaling {
  std::string phase;
  std::vector<core::ScalingPoint> series;  ///< sorted by parallelism
  core::ScalingClass cls = core::ScalingClass::kIdeal;

  bool superlinear() const noexcept {
    return cls == core::ScalingClass::kSuperlinear;
  }
};

/// Builds per-phase scaling series from profiles of the same workload
/// at different thread counts. `sweep` maps parallelism -> profile; a
/// phase enters the result only if it has a valid EP at parallelism 1
/// (the Eq (5) base). Phases sorted by name.
std::vector<PhaseScaling> phase_ep_scaling(
    std::span<const std::pair<unsigned, const Profile*>> sweep,
    Plane plane);

}  // namespace capow::profile
