#include "capow/profile/attribution.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <deque>
#include <map>
#include <ostream>

namespace capow::profile {

namespace {

/// One span instance flattened out of the event stream.
struct SpanIv {
  const char* name = nullptr;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
};

/// Mutable aggregation node; pooled in a deque so pointers stay stable
/// while the tree grows.
struct AggNode {
  std::string_view name;
  AggNode* parent = nullptr;
  std::map<std::string_view, AggNode*> children;
  std::uint64_t count = 0;
  std::uint64_t self_ns = 0;
  std::uint64_t total_ns = 0;
  std::array<double, kPlaneCount> self_j{};
};

/// A maximal interval during which `node` was some thread's innermost
/// open span.
struct LeafSeg {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  AggNode* node = nullptr;
};

AggNode* child_of(AggNode* parent, std::string_view name,
                  std::deque<AggNode>& pool) {
  auto it = parent->children.find(name);
  if (it != parent->children.end()) return it->second;
  pool.push_back(AggNode{});
  AggNode* node = &pool.back();
  node->name = name;
  node->parent = parent;
  parent->children.emplace(name, node);
  return node;
}

/// Walks one thread's spans (sorted begin-asc, end-desc so parents
/// precede their children), reconstructing the scope stack and emitting
/// leaf segments: the gaps of each span not covered by its children.
void build_thread_segments(std::vector<SpanIv>& spans, AggNode* root,
                           std::deque<AggNode>& pool,
                           std::vector<LeafSeg>& segs) {
  std::sort(spans.begin(), spans.end(),
            [](const SpanIv& a, const SpanIv& b) {
              if (a.begin != b.begin) return a.begin < b.begin;
              if (a.end != b.end) return a.end > b.end;
              return std::strcmp(a.name, b.name) < 0;
            });

  struct Open {
    std::uint64_t end = 0;     // clamped close time
    std::uint64_t cursor = 0;  // self time emitted up to here
    AggNode* node = nullptr;
  };
  std::vector<Open> stack;
  const auto close_top = [&] {
    Open& top = stack.back();
    if (top.end > top.cursor) {
      top.node->self_ns += top.end - top.cursor;
      segs.push_back(LeafSeg{top.cursor, top.end, top.node});
    }
    stack.pop_back();
  };

  for (const SpanIv& s : spans) {
    while (!stack.empty() && stack.back().end <= s.begin) close_top();
    std::uint64_t b = s.begin;
    std::uint64_t e = s.end;
    if (!stack.empty()) {
      // A child reaching past its parent's end is malformed (RAII scopes
      // cannot produce it); clamp so the tree stays a tree.
      Open& parent = stack.back();
      e = std::min(e, parent.end);
      b = std::min(std::max(b, parent.cursor), e);
      if (b > parent.cursor) {
        parent.node->self_ns += b - parent.cursor;
        segs.push_back(LeafSeg{parent.cursor, b, parent.node});
      }
      parent.cursor = std::max(parent.cursor, e);
    }
    AggNode* parent_node = stack.empty() ? root : stack.back().node;
    AggNode* node = child_of(parent_node, s.name, pool);
    node->count += 1;
    node->total_ns += e - b;
    stack.push_back(Open{e, b, node});
  }
  while (!stack.empty()) close_top();
}

/// Converts the pooled builder tree into the public (value-type,
/// name-sorted) representation and fills in total_j.
ProfileNode finalize(const AggNode& node) {
  ProfileNode out;
  out.name = std::string(node.name);
  out.count = node.count;
  out.self_ns = node.self_ns;
  out.total_ns = node.total_ns;
  out.self_j = node.self_j;
  out.total_j = node.self_j;
  out.children.reserve(node.children.size());
  for (const auto& [name, child] : node.children) {
    out.children.push_back(finalize(*child));
    const ProfileNode& c = out.children.back();
    for (std::size_t p = 0; p < kPlaneCount; ++p) {
      out.total_j[p] += c.total_j[p];
    }
  }
  return out;
}

void sum_root_totals(ProfileNode& root) {
  for (const ProfileNode& c : root.children) {
    root.total_ns += c.total_ns;
  }
}

std::string fmt_j(double joules) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6f", joules);
  return buf;
}

void write_text_node(const ProfileNode& node, int depth, std::ostream& os) {
  char line[256];
  std::string name(static_cast<std::size_t>(depth) * 2, ' ');
  name += node.name;
  std::snprintf(line, sizeof line,
                "%-36s %7llu %12.3f %12.3f %14.3f %14.3f %12.3f\n",
                name.c_str(),
                static_cast<unsigned long long>(node.count),
                static_cast<double>(node.self_ns) * 1e-6,
                static_cast<double>(node.total_ns) * 1e-6,
                node.self_j[0] * 1e3, node.total_j[0] * 1e3,
                node.self_j[1] * 1e3);
  os << line;
  for (const ProfileNode& c : node.children) {
    write_text_node(c, depth + 1, os);
  }
}

void write_folded_node(const ProfileNode& node, const std::string& prefix,
                       FoldedWeight weight, Plane plane, std::ostream& os) {
  const std::string stack =
      prefix.empty() ? node.name : prefix + ";" + node.name;
  const long long w =
      weight == FoldedWeight::kNanoseconds
          ? static_cast<long long>(node.self_ns)
          : std::llround(node.self_j[static_cast<std::size_t>(plane)] *
                         1e3);
  if (w > 0) os << stack << ' ' << w << '\n';
  for (const ProfileNode& c : node.children) {
    write_folded_node(c, stack, weight, plane, os);
  }
}

}  // namespace

const char* plane_name(Plane p) noexcept {
  return p == Plane::kPackage ? "package" : "pp0";
}

const ProfileNode* ProfileNode::child(
    std::string_view child_name) const noexcept {
  for (const ProfileNode& c : children) {
    if (c.name == child_name) return &c;
  }
  return nullptr;
}

double Profile::attributed_j(Plane p) const noexcept {
  const std::size_t i = static_cast<std::size_t>(p);
  return root.total_j[i] + untracked_j[i];
}

std::vector<PowerSlice> slices_from_samples(
    std::span<const TimelinePoint> samples, std::uint64_t base_ns) {
  std::vector<PowerSlice> out;
  out.reserve(samples.size());
  double prev = 0.0;
  for (const TimelinePoint& s : samples) {
    if (!(s.t_seconds > prev)) continue;
    PowerSlice slice;
    slice.t_begin_ns = base_ns + static_cast<std::uint64_t>(
                                     std::llround(prev * 1e9));
    slice.t_end_ns = base_ns + static_cast<std::uint64_t>(
                                   std::llround(s.t_seconds * 1e9));
    slice.watts[static_cast<std::size_t>(Plane::kPackage)] = s.package_w;
    slice.watts[static_cast<std::size_t>(Plane::kPp0)] = s.pp0_w;
    if (slice.t_end_ns > slice.t_begin_ns) out.push_back(slice);
    prev = s.t_seconds;
  }
  return out;
}

Profile attribute(const AttributionInput& in) {
  // --- 1. span stream -> per-thread instance stacks -> leaf segments.
  std::map<std::uint64_t, std::vector<SpanIv>> by_tid;
  for (const telemetry::TraceEvent& ev : in.events) {
    if (ev.rec.kind != telemetry::EventKind::kSpan) continue;
    if (ev.rec.name == nullptr) continue;
    if (ev.rec.t_end_ns <= ev.rec.t_begin_ns) continue;
    by_tid[ev.tid].push_back(
        SpanIv{ev.rec.name, ev.rec.t_begin_ns, ev.rec.t_end_ns});
  }

  std::deque<AggNode> pool;
  pool.push_back(AggNode{});
  AggNode* root = &pool.front();
  root->name = "<root>";

  std::vector<LeafSeg> segs;
  for (auto& [tid, spans] : by_tid) {
    build_thread_segments(spans, root, pool, segs);
  }

  Profile out;

  // --- 2. the power timeline: sort, measure, integrate lazily during
  // the sweep so the conservation ledger and the attribution are the
  // same sum taken over the same elementary intervals.
  std::vector<PowerSlice> slices = in.slices;
  slices.erase(std::remove_if(slices.begin(), slices.end(),
                              [](const PowerSlice& s) {
                                return s.t_end_ns <= s.t_begin_ns;
                              }),
               slices.end());
  std::sort(slices.begin(), slices.end(),
            [](const PowerSlice& a, const PowerSlice& b) {
              return a.t_begin_ns < b.t_begin_ns;
            });

  if (!slices.empty()) {
    SliceStats st;
    st.count = slices.size();
    double sum = 0.0;
    st.min_seconds = 1e300;
    for (const PowerSlice& s : slices) {
      const double w = static_cast<double>(s.t_end_ns - s.t_begin_ns) * 1e-9;
      st.min_seconds = std::min(st.min_seconds, w);
      st.max_seconds = std::max(st.max_seconds, w);
      sum += w;
      for (std::size_t p = 0; p < kPlaneCount; ++p) {
        out.peak_w[p] = std::max(out.peak_w[p], s.watts[p]);
      }
    }
    st.mean_seconds = sum / static_cast<double>(st.count);
    out.slice_stats = st;
  }

  // --- 3. the sweep: elementary intervals are delimited by every leaf
  // segment edge and every slice edge, so within one interval both the
  // active leaf set and the plane power are constant.
  struct Edge {
    std::uint64_t t;
    std::int32_t delta;  // +1 open, -1 close (closes sort first)
    std::uint32_t seg;
  };
  std::vector<Edge> edges;
  edges.reserve(segs.size() * 2);
  std::vector<std::uint64_t> times;
  times.reserve(segs.size() * 2 + slices.size() * 2);
  for (std::uint32_t i = 0; i < segs.size(); ++i) {
    edges.push_back(Edge{segs[i].begin, +1, i});
    edges.push_back(Edge{segs[i].end, -1, i});
    times.push_back(segs[i].begin);
    times.push_back(segs[i].end);
  }
  for (const PowerSlice& s : slices) {
    times.push_back(s.t_begin_ns);
    times.push_back(s.t_end_ns);
  }
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    if (a.t != b.t) return a.t < b.t;
    return a.delta < b.delta;
  });
  std::sort(times.begin(), times.end());
  times.erase(std::unique(times.begin(), times.end()), times.end());

  std::vector<std::uint32_t> active;          // segment ids
  std::vector<std::uint32_t> pos(segs.size(), 0);  // index into active
  std::size_t ei = 0;
  std::size_t si = 0;
  for (std::size_t ti = 0; ti + 1 < times.size(); ++ti) {
    const std::uint64_t t0 = times[ti];
    const std::uint64_t t1 = times[ti + 1];
    // Apply the edges landing at t0.
    for (; ei < edges.size() && edges[ei].t == t0; ++ei) {
      const Edge& e = edges[ei];
      if (e.delta > 0) {
        pos[e.seg] = static_cast<std::uint32_t>(active.size());
        active.push_back(e.seg);
      } else {
        const std::uint32_t at = pos[e.seg];
        active[at] = active.back();
        pos[active[at]] = at;
        active.pop_back();
      }
    }
    // The covering slice, if any (slice edges are all in `times`, so
    // [t0, t1) is either fully inside one slice or fully outside all).
    while (si < slices.size() && slices[si].t_end_ns <= t0) ++si;
    if (si >= slices.size() || slices[si].t_begin_ns > t0) continue;

    const double dt = static_cast<double>(t1 - t0) * 1e-9;
    std::array<double, kPlaneCount> e{};
    for (std::size_t p = 0; p < kPlaneCount; ++p) {
      e[p] = slices[si].watts[p] * dt;
      out.plane_total_j[p] += e[p];
    }
    if (active.empty()) {
      for (std::size_t p = 0; p < kPlaneCount; ++p) {
        out.untracked_j[p] += e[p];
      }
      out.untracked_ns += t1 - t0;
    } else {
      const double inv_k = 1.0 / static_cast<double>(active.size());
      std::array<double, kPlaneCount> share{};
      for (std::size_t p = 0; p < kPlaneCount; ++p) {
        share[p] = e[p] * inv_k;
      }
      for (const std::uint32_t id : active) {
        AggNode* node = segs[id].node;
        for (std::size_t p = 0; p < kPlaneCount; ++p) {
          node->self_j[p] += share[p];
        }
      }
    }
  }

  // --- 4. aggregate tree -> public value tree.
  out.root = finalize(*root);
  sum_root_totals(out.root);
  return out;
}

void write_folded(const Profile& p, std::ostream& os, FoldedWeight weight,
                  Plane plane, std::string_view stack_prefix) {
  const std::string prefix(stack_prefix);
  for (const ProfileNode& c : p.root.children) {
    write_folded_node(c, prefix, weight, plane, os);
  }
  const long long untracked =
      weight == FoldedWeight::kNanoseconds
          ? static_cast<long long>(p.untracked_ns)
          : std::llround(p.untracked_j[static_cast<std::size_t>(plane)] *
                         1e3);
  if (untracked > 0) {
    os << (prefix.empty() ? std::string("<untracked>")
                          : prefix + ";<untracked>")
       << ' ' << untracked << '\n';
  }
}

void write_text(const Profile& p, std::ostream& os) {
  os << "plane        integrated J    attributed J     untracked J\n";
  for (std::size_t i = 0; i < kPlaneCount; ++i) {
    const Plane plane = static_cast<Plane>(i);
    char line[160];
    std::snprintf(line, sizeof line, "%-10s %14s %15s %15s\n",
                  plane_name(plane), fmt_j(p.plane_total_j[i]).c_str(),
                  fmt_j(p.attributed_j(plane)).c_str(),
                  fmt_j(p.untracked_j[i]).c_str());
    os << line;
  }
  if (p.slice_stats.count > 0) {
    char line[200];
    std::snprintf(
        line, sizeof line,
        "sampling: %zu slices, gap min/mean/max %.3f/%.3f/%.3f ms; "
        "error bound +/-%.3f mJ per span edge (peak %.1f W)\n",
        p.slice_stats.count, p.slice_stats.min_seconds * 1e3,
        p.slice_stats.mean_seconds * 1e3, p.slice_stats.max_seconds * 1e3,
        p.slice_stats.max_seconds * p.peak_w[0] * 1e3, p.peak_w[0]);
    os << line;
  } else {
    os << "sampling: no power slices (time-only profile)\n";
  }
  os << "span                                   count      self ms"
        "     total ms     self pkg mJ    total pkg mJ  self pp0 mJ\n";
  for (const ProfileNode& c : p.root.children) {
    write_text_node(c, 0, os);
  }
  if (p.untracked_ns > 0 || p.untracked_j[0] > 0.0 ||
      p.untracked_j[1] > 0.0) {
    char line[256];
    std::snprintf(line, sizeof line,
                  "%-36s %7s %12.3f %12.3f %14.3f %14.3f %12.3f\n",
                  "<untracked>", "-",
                  static_cast<double>(p.untracked_ns) * 1e-6,
                  static_cast<double>(p.untracked_ns) * 1e-6,
                  p.untracked_j[0] * 1e3, p.untracked_j[0] * 1e3,
                  p.untracked_j[1] * 1e3);
    os << line;
  }
}

}  // namespace capow::profile
