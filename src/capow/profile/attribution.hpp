// Offline energy attribution: joules per span, from a trace plus a
// power timeline.
//
// PR 1 produced the two raw signals — the span tracer ("what was each
// thread doing, when") and the PowerSampler ("what was each power plane
// drawing, when") — on the same monotonic clock, but never joined them.
// This module is the join: Eq (4) of the paper discretized per power
// plane. Each plane's piecewise-constant power timeline is integrated
// over the span intervals of the trace, producing a hierarchical
// self/total profile in joules as well as nanoseconds.
//
// Attribution rules (all per plane, planes attributed independently):
//
//   * At any instant, a thread's energy share belongs to its innermost
//     open span (the leaf); enclosing spans receive it transitively in
//     their *total*, the leaf in its *self*.
//   * When k threads have open spans during an instant, each thread's
//     leaf receives 1/k of the plane's power (RAPL planes are
//     package-wide; an equal split is the discretization of Eq (4)'s
//     per-unit sum that conserves the measured integral).
//   * Instants covered by the power timeline but by no span go to an
//     explicit `<untracked>` bucket — idle threads, untraced code,
//     sampler warm-up. Nothing is discarded: per plane,
//     Σ span self-energy + untracked == the integrated timeline total
//     (exactly, modulo floating-point rounding of the same sum taken
//     in a different association — tests pin this within an
//     ulp-scaled tolerance).
//   * Span time outside the power timeline's coverage (a span
//     straddling the first or last sample) accrues nanoseconds but no
//     joules: no measurement, no attribution.
//
// Everything here is strictly offline — a pure function of a collected
// Tracer event stream and a sample vector. The traced hot path runs no
// attribution code (bench/abl_profile_overhead holds this to the
// telemetry layer's existing <2% budget).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "capow/telemetry/tracer.hpp"

namespace capow::profile {

/// The independently attributed RAPL planes (package and PP0 — the two
/// the sampler records; Eq (3) sums over exactly these).
enum class Plane : std::size_t { kPackage = 0, kPp0 = 1 };
inline constexpr std::size_t kPlaneCount = 2;

/// "package" / "pp0".
const char* plane_name(Plane p) noexcept;

/// One piecewise-constant power slice: both planes held at `watts` over
/// [t_begin_ns, t_end_ns). Slices must be non-overlapping; gaps between
/// slices are simply uncovered time (no energy, no attribution).
struct PowerSlice {
  std::uint64_t t_begin_ns = 0;
  std::uint64_t t_end_ns = 0;
  std::array<double, kPlaneCount> watts{};
};

/// A sampler-style timeline point: average watts over the interval
/// ending at t_seconds (the shape PowerSampler::Sample and
/// sim::PowerSample share).
struct TimelinePoint {
  double t_seconds = 0.0;
  double package_w = 0.0;
  double pp0_w = 0.0;
};

/// Converts a monotone sample series into contiguous slices on the
/// tracer clock: sample i becomes the slice (t_{i-1}, t_i] (t_{-1} = 0),
/// shifted by `base_ns` (pass the Tracer/PowerSampler start timestamp).
/// Non-increasing timestamps are skipped.
std::vector<PowerSlice> slices_from_samples(
    std::span<const TimelinePoint> samples, std::uint64_t base_ns = 0);

/// Everything attribute() consumes: the collected span stream (instants
/// and counters are ignored) and the power timeline.
struct AttributionInput {
  std::vector<telemetry::TraceEvent> events;
  std::vector<PowerSlice> slices;
};

/// Observed power-timeline granularity — the profiler's attribution
/// error bar: a span boundary can be misattributed by at most one
/// slice width, so the per-edge energy uncertainty is bounded by
/// max_seconds * peak watts.
struct SliceStats {
  std::size_t count = 0;
  double min_seconds = 0.0;
  double mean_seconds = 0.0;
  double max_seconds = 0.0;
};

/// One aggregated frame of the hierarchical profile, keyed by span name
/// within its parent (instances with equal names merge). Children are
/// sorted by name so output is deterministic.
struct ProfileNode {
  std::string name;
  std::uint64_t count = 0;     ///< span instances aggregated here
  std::uint64_t self_ns = 0;   ///< time with this frame as the leaf
  std::uint64_t total_ns = 0;  ///< summed instance durations
  std::array<double, kPlaneCount> self_j{};
  std::array<double, kPlaneCount> total_j{};  ///< self + Σ children
  std::vector<ProfileNode> children;

  /// Child by name, or nullptr.
  const ProfileNode* child(std::string_view child_name) const noexcept;
};

/// The attribution result: the aggregated span tree plus the
/// conservation ledger.
struct Profile {
  /// Synthetic root ("<root>"); its children are the top-level spans.
  /// root.total_j / total_ns aggregate the whole tree.
  ProfileNode root;
  /// Integral of the power timeline per plane — the right-hand side of
  /// the conservation invariant.
  std::array<double, kPlaneCount> plane_total_j{};
  /// Energy in covered instants with no open span anywhere.
  std::array<double, kPlaneCount> untracked_j{};
  /// Wall nanoseconds of covered-but-unspanned time.
  std::uint64_t untracked_ns = 0;
  /// Peak plane power seen in the timeline (for the error bound).
  std::array<double, kPlaneCount> peak_w{};
  SliceStats slice_stats;

  /// Σ span self-energy + untracked for `p` — equals plane_total_j[p]
  /// within an ulp-scaled tolerance (the conservation invariant).
  double attributed_j(Plane p) const noexcept;
};

/// The attribution engine. Pure and offline; tolerates malformed input
/// (unsorted events, spans overlapping their parent's end — clamped,
/// empty timelines — ns-only profile).
Profile attribute(const AttributionInput& in);

/// Collapsed-stack weight: wall nanoseconds of self time, or self
/// millijoules (rounded to integer) on a chosen plane.
enum class FoldedWeight { kNanoseconds, kMillijoules };

/// Writes the profile as collapsed stacks ("a;b;c <weight>" per line,
/// flamegraph.pl / speedscope compatible), pre-order, children by name.
/// Zero-weight frames are skipped; untracked energy appears as a
/// top-level `<untracked>` frame. A non-empty `stack_prefix` becomes
/// the shared root frame (use the run label).
void write_folded(const Profile& p, std::ostream& os, FoldedWeight weight,
                  Plane plane = Plane::kPackage,
                  std::string_view stack_prefix = {});

/// Human-readable profile: the conservation ledger, the sampling
/// granularity / error bound, and the indented self/total table.
void write_text(const Profile& p, std::ostream& os);

}  // namespace capow::profile
