#include "capow/profile/ep_phases.hpp"

#include <algorithm>
#include <map>

namespace capow::profile {

std::vector<PhaseEnergy> phase_energies(const Profile& p, Plane plane) {
  const std::size_t pi = static_cast<std::size_t>(plane);
  std::vector<PhaseEnergy> out;
  out.reserve(p.root.children.size());
  for (const ProfileNode& c : p.root.children) {
    // EP needs both a duration and an energy; phases the timeline never
    // covered (or zero-length ones) have no defined ratio. Use total
    // time/energy so a phase's EP includes its subtree — the phase is
    // the unit of Eq (1) here, not the leaf frame.
    const double seconds = static_cast<double>(c.total_ns) * 1e-9;
    const double joules = c.total_j[pi];
    if (seconds <= 0.0 || joules <= 0.0) continue;
    PhaseEnergy pe;
    pe.phase = c.name;
    pe.seconds = seconds;
    pe.watts = joules / seconds;
    pe.ep = core::energy_performance(pe.watts, seconds);
    out.push_back(std::move(pe));
  }
  // Root children are already name-sorted; keep the contract explicit.
  std::sort(out.begin(), out.end(),
            [](const PhaseEnergy& a, const PhaseEnergy& b) {
              return a.phase < b.phase;
            });
  return out;
}

std::vector<PhaseScaling> phase_ep_scaling(
    std::span<const std::pair<unsigned, const Profile*>> sweep,
    Plane plane) {
  // phase -> (parallelism -> ep); the map keeps phases name-sorted.
  std::map<std::string, std::map<unsigned, double>> by_phase;
  for (const auto& [parallelism, profile] : sweep) {
    if (profile == nullptr || parallelism == 0) continue;
    for (const PhaseEnergy& pe : phase_energies(*profile, plane)) {
      // First profile at a given parallelism wins; duplicate sweep
      // entries would otherwise silently average apples with oranges.
      by_phase[pe.phase].emplace(parallelism, pe.ep);
    }
  }

  std::vector<PhaseScaling> out;
  for (const auto& [phase, points] : by_phase) {
    if (points.find(1u) == points.end()) continue;  // no Eq (5) base
    std::vector<std::pair<unsigned, double>> pairs(points.begin(),
                                                   points.end());
    PhaseScaling ps;
    ps.phase = phase;
    ps.series = core::scaling_series(pairs);
    ps.cls = core::classify_scaling(ps.series);
    out.push_back(std::move(ps));
  }
  return out;
}

}  // namespace capow::profile
