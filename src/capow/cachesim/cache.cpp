#include "capow/cachesim/cache.hpp"

#include <bit>
#include <stdexcept>

namespace capow::cachesim {

void CacheConfig::validate() const {
  if (capacity_bytes == 0 || associativity == 0 || line_bytes == 0) {
    throw std::invalid_argument("CacheConfig: zero field");
  }
  if (!std::has_single_bit(static_cast<std::uint64_t>(line_bytes))) {
    throw std::invalid_argument("CacheConfig: line size not a power of 2");
  }
  if (capacity_bytes %
          (static_cast<std::size_t>(associativity) * line_bytes) !=
      0) {
    throw std::invalid_argument(
        "CacheConfig: capacity not divisible into whole sets");
  }
}

LruCache::LruCache(CacheConfig config) : config_(config) {
  config_.validate();
  num_sets_ = config_.sets();
  line_shift_ =
      static_cast<unsigned>(std::countr_zero(
          static_cast<std::uint64_t>(config_.line_bytes)));
  ways_.assign(num_sets_ * config_.associativity, Way{});
}

bool LruCache::access(std::uint64_t addr) {
  const std::uint64_t line = addr >> line_shift_;
  const std::size_t set = set_of(line);
  Way* base = ways_.data() + set * config_.associativity;
  ++stats_.accesses;
  ++clock_;

  Way* victim = base;
  for (unsigned w = 0; w < config_.associativity; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == line) {
      way.last_use = clock_;
      ++stats_.hits;
      return true;
    }
    if (!way.valid) {
      victim = &way;
    } else if (victim->valid && way.last_use < victim->last_use) {
      victim = &way;
    }
  }
  victim->tag = line;
  victim->valid = true;
  victim->last_use = clock_;
  return false;
}

bool LruCache::contains(std::uint64_t addr) const {
  const std::uint64_t line = addr >> line_shift_;
  const Way* base = ways_.data() + set_of(line) * config_.associativity;
  for (unsigned w = 0; w < config_.associativity; ++w) {
    if (base[w].valid && base[w].tag == line) return true;
  }
  return false;
}

void LruCache::reset() {
  ways_.assign(ways_.size(), Way{});
  clock_ = 0;
  stats_ = LevelStats{};
}

CacheHierarchy::CacheHierarchy(const std::vector<CacheConfig>& levels) {
  if (levels.empty()) {
    throw std::invalid_argument("CacheHierarchy: no levels");
  }
  levels_.reserve(levels.size());
  for (const auto& cfg : levels) levels_.emplace_back(cfg);
}

CacheHierarchy CacheHierarchy::from_machine(
    const machine::MachineSpec& spec) {
  std::vector<CacheConfig> levels;
  for (const auto& c : spec.caches) {
    levels.push_back(CacheConfig{
        .capacity_bytes = c.capacity_bytes,
        .associativity = 8,
        .line_bytes = c.line_bytes,
    });
  }
  if (levels.empty()) {
    throw std::invalid_argument(
        "CacheHierarchy::from_machine: machine has no caches");
  }
  return CacheHierarchy(levels);
}

void CacheHierarchy::access(std::uint64_t addr, std::size_t bytes) {
  if (bytes == 0) return;
  const unsigned line = levels_.front().config().line_bytes;
  const std::uint64_t first = addr / line;
  const std::uint64_t last = (addr + bytes - 1) / line;
  for (std::uint64_t l = first; l <= last; ++l) {
    const std::uint64_t a = l * line;
    for (auto& level : levels_) {
      if (level.access(a)) break;  // hit: upper levels filled on the way
    }
  }
}

std::uint64_t CacheHierarchy::dram_bytes() const noexcept {
  const auto& llc = levels_.back();
  return llc.stats().misses() * llc.config().line_bytes;
}

void CacheHierarchy::reset() {
  for (auto& level : levels_) level.reset();
}

}  // namespace capow::cachesim
