#include "capow/cachesim/locality_trace.hpp"

#include <stdexcept>

#include "capow/linalg/ops.hpp"

namespace capow::cachesim {

namespace {

constexpr std::uint64_t kWord = sizeof(double);

/// A rectangular window of the traced address space (strided like a
/// MatrixView: rows of `cols` doubles, `ld` doubles apart).
struct Region {
  std::uint64_t addr = 0;  // byte address of element (0, 0)
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::size_t ld = 0;  // row stride in doubles

  Region quadrant(int which) const {
    const std::size_t hr = rows / 2;
    const std::size_t hc = cols / 2;
    Region q{addr, hr, hc, ld};
    if (which == 1 || which == 3) q.addr += hc * kWord;
    if (which == 2 || which == 3) q.addr += hr * ld * kWord;
    return q;
  }
  std::size_t elems() const noexcept { return rows * cols; }
};

/// Bump/stack allocator mirroring the implementations' nested Matrix
/// lifetimes: child buffers live above their parents and are released
/// in LIFO order.
class RegionAllocator {
 public:
  explicit RegionAllocator(std::uint64_t base) : top_(base) {}

  Region alloc(std::size_t n) {
    const std::uint64_t addr = top_;
    top_ += (n * n * kWord + 63) / 64 * 64;
    return Region{addr, n, n, n};
  }
  std::uint64_t mark() const noexcept { return top_; }
  void release(std::uint64_t m) noexcept { top_ = m; }

 private:
  std::uint64_t top_;
};

/// Shared replay context: the hierarchy plus logical-byte accounting.
struct Tracer {
  CacheHierarchy hierarchy;
  std::uint64_t logical_bytes = 0;

  void touch(const Region& r) {
    for (std::size_t i = 0; i < r.rows; ++i) {
      hierarchy.access(r.addr + i * r.ld * kWord, r.cols * kWord);
    }
  }

  // Binary elementwise op: read a, read b, write dst (3 words/element).
  void op3(const Region& a, const Region& b, const Region& dst) {
    touch(a);
    touch(b);
    touch(dst);
    logical_bytes += 3 * dst.elems() * kWord;
  }
  // In-place accumulate: dst read+write plus src read — the same 3
  // words/element convention the instrumentation uses.
  void acc(const Region& dst, const Region& src) {
    touch(src);
    touch(dst);  // read-modify-write: one walk covers both directions
    logical_bytes += 3 * dst.elems() * kWord;
  }
  void copy2(const Region& src, const Region& dst) {
    touch(src);
    touch(dst);
    logical_bytes += 2 * dst.elems() * kWord;
  }
  void zero(const Region& dst) {
    touch(dst);
    logical_bytes += dst.elems() * kWord;
  }

  // Base multiply, real access shape: per output row, stream the A row,
  // all of B, and the C row. Logical accounting keeps the
  // instrumentation's 3 b^2 convention.
  void base_multiply(const Region& a, const Region& b, const Region& c) {
    for (std::size_t i = 0; i < c.rows; ++i) {
      hierarchy.access(a.addr + i * a.ld * kWord, a.cols * kWord);
      touch(b);
      hierarchy.access(c.addr + i * c.ld * kWord, c.cols * kWord);
    }
    logical_bytes += 3 * c.elems() * kWord;
  }
};

// ---- classic Strassen replay (mirrors strassen.cpp's serial order).

void strassen_recurse(Tracer& t, RegionAllocator& heap, const Region& a,
                      const Region& b, const Region& c,
                      std::size_t cutoff) {
  const std::size_t n = a.rows;
  if (n <= cutoff) {
    t.base_multiply(a, b, c);
    return;
  }
  const std::size_t h = n / 2;
  const Region a11 = a.quadrant(0), a12 = a.quadrant(1),
               a21 = a.quadrant(2), a22 = a.quadrant(3);
  const Region b11 = b.quadrant(0), b12 = b.quadrant(1),
               b21 = b.quadrant(2), b22 = b.quadrant(3);
  const Region c11 = c.quadrant(0), c12 = c.quadrant(1),
               c21 = c.quadrant(2), c22 = c.quadrant(3);

  const std::uint64_t node_mark = heap.mark();
  Region m[7];
  for (auto& mi : m) mi = heap.alloc(h);

  const auto product = [&](int i) {
    const std::uint64_t mark = heap.mark();
    switch (i) {
      case 0: {
        Region ta = heap.alloc(h), tb = heap.alloc(h);
        t.op3(a11, a22, ta);
        t.op3(b11, b22, tb);
        strassen_recurse(t, heap, ta, tb, m[0], cutoff);
        break;
      }
      case 1: {
        Region ta = heap.alloc(h);
        t.op3(a21, a22, ta);
        strassen_recurse(t, heap, ta, b11, m[1], cutoff);
        break;
      }
      case 2: {
        Region tb = heap.alloc(h);
        t.op3(b12, b22, tb);
        strassen_recurse(t, heap, a11, tb, m[2], cutoff);
        break;
      }
      case 3: {
        Region tb = heap.alloc(h);
        t.op3(b21, b11, tb);
        strassen_recurse(t, heap, a22, tb, m[3], cutoff);
        break;
      }
      case 4: {
        Region ta = heap.alloc(h);
        t.op3(a11, a12, ta);
        strassen_recurse(t, heap, ta, b22, m[4], cutoff);
        break;
      }
      case 5: {
        Region ta = heap.alloc(h), tb = heap.alloc(h);
        t.op3(a21, a11, ta);
        t.op3(b11, b12, tb);
        strassen_recurse(t, heap, ta, tb, m[5], cutoff);
        break;
      }
      case 6: {
        Region ta = heap.alloc(h), tb = heap.alloc(h);
        t.op3(a12, a22, ta);
        t.op3(b21, b22, tb);
        strassen_recurse(t, heap, ta, tb, m[6], cutoff);
        break;
      }
      default:
        break;
    }
    heap.release(mark);
  };
  for (int i = 0; i < 7; ++i) product(i);

  // Combine: C11 = M1+M4-M5+M7, C12 = M3+M5, C21 = M2+M4,
  // C22 = M1-M2+M3+M6 — 8 ops, as implemented.
  t.op3(m[0], m[3], c11);
  t.acc(c11, m[4]);
  t.acc(c11, m[6]);
  t.op3(m[2], m[4], c12);
  t.op3(m[1], m[3], c21);
  t.op3(m[0], m[1], c22);
  t.acc(c22, m[2]);
  t.acc(c22, m[5]);
  heap.release(node_mark);
}

// ---- CAPS replay (mirrors caps.cpp's serial order).

void caps_recurse(Tracer& t, RegionAllocator& heap, const Region& a,
                  const Region& b, const Region& c, std::size_t cutoff,
                  std::size_t bfs_depth, std::size_t depth) {
  const std::size_t n = a.rows;
  if (n <= cutoff) {
    t.base_multiply(a, b, c);
    return;
  }
  const std::size_t h = n / 2;
  const Region a11 = a.quadrant(0), a12 = a.quadrant(1),
               a21 = a.quadrant(2), a22 = a.quadrant(3);
  const Region b11 = b.quadrant(0), b12 = b.quadrant(1),
               b21 = b.quadrant(2), b22 = b.quadrant(3);
  const Region c11 = c.quadrant(0), c12 = c.quadrant(1),
               c21 = c.quadrant(2), c22 = c.quadrant(3);

  if (depth < bfs_depth) {
    // BFS: materialize all 14 operands, then the 7 products, then
    // combine.
    const std::uint64_t mark = heap.mark();
    Region la[7], lb[7], q[7];
    for (int i = 0; i < 7; ++i) la[i] = heap.alloc(h);
    for (int i = 0; i < 7; ++i) lb[i] = heap.alloc(h);
    for (int i = 0; i < 7; ++i) q[i] = heap.alloc(h);

    t.op3(a11, a22, la[0]);
    t.op3(a21, a22, la[1]);
    t.copy2(a11, la[2]);
    t.copy2(a22, la[3]);
    t.op3(a11, a12, la[4]);
    t.op3(a21, a11, la[5]);
    t.op3(a12, a22, la[6]);
    t.op3(b11, b22, lb[0]);
    t.copy2(b11, lb[1]);
    t.op3(b12, b22, lb[2]);
    t.op3(b21, b11, lb[3]);
    t.copy2(b22, lb[4]);
    t.op3(b11, b12, lb[5]);
    t.op3(b21, b22, lb[6]);

    for (int i = 0; i < 7; ++i) {
      caps_recurse(t, heap, la[i], lb[i], q[i], cutoff, bfs_depth,
                   depth + 1);
    }

    t.op3(q[0], q[3], c11);
    t.acc(c11, q[4]);
    t.acc(c11, q[6]);
    t.op3(q[2], q[4], c12);
    t.op3(q[1], q[3], c21);
    t.op3(q[0], q[1], c22);
    t.acc(c22, q[2]);
    t.acc(c22, q[5]);
    heap.release(mark);
    return;
  }

  // DFS: zero C, one live product buffer, streaming accumulation.
  t.zero(c);
  const std::uint64_t mark = heap.mark();
  Region q = heap.alloc(h);
  for (int i = 0; i < 7; ++i) {
    const std::uint64_t pmark = heap.mark();
    Region lhs, rhs;
    switch (i) {
      case 0: {
        Region ta = heap.alloc(h), tb = heap.alloc(h);
        t.op3(a11, a22, ta);
        t.op3(b11, b22, tb);
        lhs = ta;
        rhs = tb;
        break;
      }
      case 1: {
        Region ta = heap.alloc(h);
        t.op3(a21, a22, ta);
        lhs = ta;
        rhs = b11;
        break;
      }
      case 2: {
        Region tb = heap.alloc(h);
        t.op3(b12, b22, tb);
        lhs = a11;
        rhs = tb;
        break;
      }
      case 3: {
        Region tb = heap.alloc(h);
        t.op3(b21, b11, tb);
        lhs = a22;
        rhs = tb;
        break;
      }
      case 4: {
        Region ta = heap.alloc(h);
        t.op3(a11, a12, ta);
        lhs = ta;
        rhs = b22;
        break;
      }
      case 5: {
        Region ta = heap.alloc(h), tb = heap.alloc(h);
        t.op3(a21, a11, ta);
        t.op3(b11, b12, tb);
        lhs = ta;
        rhs = tb;
        break;
      }
      case 6: {
        Region ta = heap.alloc(h), tb = heap.alloc(h);
        t.op3(a12, a22, ta);
        t.op3(b21, b22, tb);
        lhs = ta;
        rhs = tb;
        break;
      }
      default:
        break;
    }
    caps_recurse(t, heap, lhs, rhs, q, cutoff, bfs_depth, depth + 1);
    switch (i) {
      case 0: t.acc(c11, q); t.acc(c22, q); break;
      case 1: t.acc(c21, q); t.acc(c22, q); break;
      case 2: t.acc(c12, q); t.acc(c22, q); break;
      case 3: t.acc(c11, q); t.acc(c21, q); break;
      case 4: t.acc(c11, q); t.acc(c12, q); break;
      case 5: t.acc(c22, q); break;
      case 6: t.acc(c11, q); break;
      default: break;
    }
    heap.release(pmark);
  }
  heap.release(mark);
}

struct Operands {
  Region a, b, c;
  std::uint64_t heap_base;
};

Operands layout(std::size_t n) {
  const std::uint64_t bytes = n * n * kWord;
  return Operands{Region{0, n, n, n}, Region{bytes, n, n, n},
                  Region{2 * bytes, n, n, n}, 3 * bytes};
}

void validate_args(std::size_t n, std::size_t cutoff) {
  if (cutoff == 0) {
    throw std::invalid_argument("locality trace: zero cutoff");
  }
  if (linalg::pad_dimension_for_recursion(n, cutoff) != n) {
    throw std::invalid_argument(
        "locality trace: n must be base*2^k for the cutoff (no padding)");
  }
}

LocalityReport finish(Tracer& t) {
  LocalityReport r;
  r.logical_bytes = t.logical_bytes;
  r.dram_bytes = t.hierarchy.dram_bytes();
  for (std::size_t i = 0; i < t.hierarchy.level_count(); ++i) {
    r.levels.push_back(t.hierarchy.level_stats(i));
  }
  return r;
}

}  // namespace

LocalityReport strassen_locality(std::size_t n, std::size_t base_cutoff,
                                 const machine::MachineSpec& spec) {
  validate_args(n, base_cutoff);
  const Operands ops = layout(n);
  Tracer t{CacheHierarchy::from_machine(spec)};
  RegionAllocator heap(ops.heap_base);
  strassen_recurse(t, heap, ops.a, ops.b, ops.c, base_cutoff);
  return finish(t);
}

LocalityReport caps_locality(std::size_t n, std::size_t base_cutoff,
                             std::size_t bfs_cutoff_depth,
                             const machine::MachineSpec& spec) {
  validate_args(n, base_cutoff);
  const Operands ops = layout(n);
  Tracer t{CacheHierarchy::from_machine(spec)};
  RegionAllocator heap(ops.heap_base);
  caps_recurse(t, heap, ops.a, ops.b, ops.c, base_cutoff,
               bfs_cutoff_depth, 0);
  return finish(t);
}

}  // namespace capow::cachesim
