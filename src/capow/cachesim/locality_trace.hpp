// Structural locality traces: replay the exact serial access pattern of
// the Strassen and CAPS recursions through the cache-hierarchy
// simulator.
//
// This is the validation instrument for the cost models' central
// approximation — the closed-form DRAM-vs-cache classification of
// addition traffic. The trace walks the same operations in the same
// order as the real implementations (operand sums, recursive products,
// combines, base multiplies), with temporaries placed by a stack
// allocator that mirrors the implementations' nested buffer lifetimes,
// and asks the simulated hierarchy what actually missed to DRAM.
//
// Conventions: logical_bytes uses the instrumentation's counting rules
// (so it equals the cost models' raw traffic exactly — asserted in
// tests), while the cache accesses follow the kernels' *real* pattern
// (e.g. the base multiply re-streams B per output row).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "capow/cachesim/cache.hpp"
#include "capow/machine/machine.hpp"

namespace capow::cachesim {

/// Outcome of one locality replay.
struct LocalityReport {
  std::uint64_t logical_bytes = 0;  ///< instrumentation-convention bytes
  std::uint64_t dram_bytes = 0;     ///< LLC-miss bytes from the simulator
  std::vector<LevelStats> levels;   ///< per-level hit/miss statistics

  /// Fraction of the logical traffic that actually reached DRAM.
  double dram_fraction() const noexcept {
    return logical_bytes == 0
               ? 0.0
               : static_cast<double>(dram_bytes) /
                     static_cast<double>(logical_bytes);
  }
};

/// Replays a serial classic-Strassen multiply of dimension n (must be
/// base*2^k for the given cutoff) on `spec`'s single-core hierarchy.
/// Throws std::invalid_argument for dimensions needing padding or a
/// zero cutoff.
LocalityReport strassen_locality(std::size_t n, std::size_t base_cutoff,
                                 const machine::MachineSpec& spec);

/// Replays a serial CAPS multiply (BFS above `bfs_cutoff_depth`, DFS
/// below) under the same rules.
LocalityReport caps_locality(std::size_t n, std::size_t base_cutoff,
                             std::size_t bfs_cutoff_depth,
                             const machine::MachineSpec& spec);

}  // namespace capow::cachesim
