// capow::cachesim — a set-associative LRU cache hierarchy simulator.
//
// The cost models classify each algorithm phase's traffic as
// DRAM-bound or cache-resident with closed-form working-set rules
// (strassen/caps cost_model.cpp). Those rules are heuristics; this
// module provides the ground truth they are tested against: replay an
// algorithm's exact serial access structure through a simulated
// L1/L2/LLC hierarchy and count what actually misses to DRAM.
//
// The simulator is line-granular and demand-driven: an access walks the
// levels top-down, hits fill upper levels (inclusive allocation), and
// LLC misses count as DRAM traffic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "capow/machine/machine.hpp"

namespace capow::cachesim {

/// One cache level's geometry.
struct CacheConfig {
  std::size_t capacity_bytes = 0;
  unsigned associativity = 8;
  unsigned line_bytes = 64;

  std::size_t sets() const noexcept {
    return capacity_bytes / (static_cast<std::size_t>(associativity) *
                             line_bytes);
  }
  /// Throws std::invalid_argument for non-power-of-two line size, zero
  /// fields, or capacity not divisible into whole sets.
  void validate() const;
};

/// Hit/miss accounting for one level.
struct LevelStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;

  std::uint64_t misses() const noexcept { return accesses - hits; }
  double miss_ratio() const noexcept {
    return accesses == 0 ? 0.0
                         : static_cast<double>(misses()) /
                               static_cast<double>(accesses);
  }
};

/// Single-level set-associative LRU cache over 64-bit line addresses.
class LruCache {
 public:
  explicit LruCache(CacheConfig config);

  /// Accesses the line containing `addr`; returns true on hit. On miss
  /// the line is filled (LRU victim evicted).
  bool access(std::uint64_t addr);

  /// True when the line is currently resident (no state change).
  bool contains(std::uint64_t addr) const;

  const CacheConfig& config() const noexcept { return config_; }
  const LevelStats& stats() const noexcept { return stats_; }
  void reset();

 private:
  struct Way {
    std::uint64_t tag = 0;
    std::uint64_t last_use = 0;
    bool valid = false;
  };

  std::size_t set_of(std::uint64_t line) const noexcept {
    return line % num_sets_;
  }

  CacheConfig config_;
  std::size_t num_sets_;
  unsigned line_shift_;
  std::vector<Way> ways_;  // num_sets_ * associativity
  std::uint64_t clock_ = 0;
  LevelStats stats_;
};

/// An L1 -> ... -> LLC hierarchy. Accesses walk down on miss; every
/// LLC miss is DRAM traffic.
class CacheHierarchy {
 public:
  /// Levels ordered L1 first. Throws when empty.
  explicit CacheHierarchy(const std::vector<CacheConfig>& levels);

  /// Builds the single-core view of a machine's hierarchy (private
  /// levels at their per-core capacity, the shared LLC in full).
  static CacheHierarchy from_machine(const machine::MachineSpec& spec);

  /// Touches `bytes` starting at `addr`, line by line.
  void access(std::uint64_t addr, std::size_t bytes);

  std::size_t level_count() const noexcept { return levels_.size(); }
  const LevelStats& level_stats(std::size_t i) const {
    return levels_.at(i).stats();
  }

  /// Bytes that missed the last level (misses * line size).
  std::uint64_t dram_bytes() const noexcept;

  void reset();

 private:
  std::vector<LruCache> levels_;
};

}  // namespace capow::cachesim
