#include "capow/capsalg/cost_model.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "capow/linalg/ops.hpp"
#include "capow/strassen/cost_model.hpp"
#include "capow/strassen/strassen.hpp"

namespace capow::capsalg {

namespace {

constexpr double kWord = sizeof(double);

struct Geometry {
  std::size_t n_input;
  std::size_t n;
  std::size_t levels;
  std::size_t base_dim;
  bool padded;
};

Geometry geometry(std::size_t n, std::size_t cutoff) {
  Geometry g;
  g.n_input = n;
  g.n = linalg::pad_dimension_for_recursion(n, cutoff);
  g.padded = g.n != n;
  g.levels = strassen::recursion_levels(g.n, cutoff);
  g.base_dim = g.n >> g.levels;
  return g;
}

double pow7(std::size_t l) {
  double v = 1.0;
  for (std::size_t i = 0; i < l; ++i) v *= 7.0;
  return v;
}

double padding_traffic(const Geometry& g) {
  if (!g.padded) return 0.0;
  const double n2 = static_cast<double>(g.n_input) * g.n_input;
  const double p2 = static_cast<double>(g.n) * g.n;
  return (2.0 * n2 + 2.0 * p2 + 2.0 * n2) * kWord;
}

double static_imbalance(double units, unsigned p) {
  if (units <= 0.0 || p <= 1) return 1.0;
  const double per = std::ceil(units / p);
  return std::min(per * p / units, 4.0);
}

}  // namespace

double caps_total_flops(std::size_t n, const CapsCostOptions& opts) {
  const Geometry g = geometry(n, opts.base_cutoff);
  if (g.n <= opts.base_cutoff) {
    const double d = static_cast<double>(n);
    return 2.0 * d * d * d;
  }
  double flops = 0.0;
  for (std::size_t l = 0; l < g.levels; ++l) {
    const double h = static_cast<double>(g.n >> (l + 1));
    const bool bfs = l < opts.bfs_cutoff_depth;
    // BFS: 10 operand + 8 combine adds; DFS: 10 operand + 12 accumulate.
    const double ops = bfs ? 18.0 : 22.0;
    flops += pow7(l) * ops * h * h;
  }
  const double b = static_cast<double>(g.base_dim);
  flops += pow7(g.levels) * 2.0 * b * b * b;
  return flops;
}

double caps_total_traffic_bytes(std::size_t n, const CapsCostOptions& opts) {
  const Geometry g = geometry(n, opts.base_cutoff);
  if (g.n <= opts.base_cutoff) {
    const double d = static_cast<double>(n);
    return 3.0 * d * d * kWord;
  }
  double bytes = padding_traffic(g);
  for (std::size_t l = 0; l < g.levels; ++l) {
    const double h = static_cast<double>(g.n >> (l + 1));
    const bool bfs = l < opts.bfs_cutoff_depth;
    // BFS: 10 ops * 3 + 4 copies * 2 + 8 combine * 3 = 62 words/elem.
    // DFS: zero-fill (4) + 10 ops * 3 + 12 accumulates * 3 = 70.
    const double words = bfs ? 62.0 : 70.0;
    bytes += pow7(l) * words * h * h * kWord;
  }
  const double b = static_cast<double>(g.base_dim);
  bytes += pow7(g.levels) * 3.0 * b * b * kWord;
  return bytes;
}

double caps_peak_buffer_bytes(std::size_t n, const CapsCostOptions& opts) {
  const Geometry g = geometry(n, opts.base_cutoff);
  if (g.n <= opts.base_cutoff) return 0.0;
  double bytes = g.padded ? 3.0 * static_cast<double>(g.n) * g.n * kWord : 0.0;
  for (std::size_t l = 0; l < g.levels; ++l) {
    const double h = static_cast<double>(g.n >> (l + 1));
    const bool bfs = l < opts.bfs_cutoff_depth;
    // Along one (serial) recursion spine: a BFS node keeps its 21
    // quadrant buffers (7x LA, LB, Q) live; a DFS node keeps at most 3
    // (Q plus transient Ta/Tb).
    bytes += (bfs ? 21.0 : 3.0) * h * h * kWord;
  }
  return bytes;
}

sim::WorkProfile caps_profile(std::size_t n,
                              const machine::MachineSpec& spec,
                              unsigned threads,
                              const CapsCostOptions& opts) {
  const Geometry g = geometry(n, opts.base_cutoff);
  const double llc = static_cast<double>(spec.llc_capacity_bytes());
  const unsigned p_cap = std::min(threads, spec.core_count);

  sim::WorkProfile wp;
  wp.name = "caps";

  if (g.n <= opts.base_cutoff) {
    const double d = static_cast<double>(n);
    wp.add(sim::PhaseCost{
        .label = "base-gemm",
        .flops = 2.0 * d * d * d,
        .dram_bytes = 3.0 * d * d * kWord,
        .parallelism = 1,
        .efficiency = strassen::kBotsBaseKernelEfficiency,
    });
    return wp;
  }

  if (g.padded) {
    wp.add(sim::PhaseCost{
        .label = "padding",
        .dram_bytes = padding_traffic(g),
        .parallelism = 1,
        .efficiency = 1.0,
    });
  }

  // Concurrency of worker-owned tasks at level l: the BFS fan-out above
  // it, capped by the cores.
  const auto task_conc = [&](std::size_t l) -> unsigned {
    const double fan = pow7(std::min(l, opts.bfs_cutoff_depth));
    return static_cast<unsigned>(
        std::max(1.0, std::min<double>(fan, p_cap)));
  };

  // CAPS's BFS levels pin one subtree per worker, so the LLC live window
  // is exactly the worker count (no untied-task widening — this is the
  // model's expression of communication avoidance).
  const unsigned window = threads > 1 ? p_cap : 1u;
  const auto dram_level = [&](double h, unsigned /*conc*/, bool first) {
    return (3.0 * h * h * kWord * window > llc) ||
           (first && 3.0 * static_cast<double>(g.n) * g.n * kWord > llc);
  };

  const auto add_phase = [&](const std::string& label, double flops,
                             double traffic, unsigned conc, bool dram,
                             double units, std::uint64_t syncs,
                             std::uint64_t spawns) {
    wp.add(sim::PhaseCost{
        .label = label,
        .flops = flops,
        .dram_bytes = dram ? traffic : 0.0,
        .cache_bytes = dram ? 0.0 : traffic,
        .parallelism = conc,
        .efficiency = strassen::kAddKernelEfficiency,
        .imbalance = static_imbalance(units, conc),
        .sync_events = threads > 1 ? syncs : 0,
        .spawn_events = threads > 1 ? spawns : 0,
    });
  };

  // Forward sweep: operand phases per level.
  for (std::size_t l = 0; l < g.levels; ++l) {
    const double nodes = pow7(l);
    const double h = static_cast<double>(g.n >> (l + 1));
    const double elems = h * h;
    const bool bfs = l < opts.bfs_cutoff_depth;
    if (bfs) {
      const unsigned conc = static_cast<unsigned>(
          std::max(1.0, std::min<double>(nodes * 14.0, p_cap)));
      add_phase("bfs-operands@L" + std::to_string(l),
                nodes * 10.0 * elems,
                nodes * (10.0 * 3.0 + 4.0 * 2.0) * elems * kWord, conc,
                dram_level(h, conc, l == 0), nodes * 14.0,
                static_cast<std::uint64_t>(nodes) * 2,
                static_cast<std::uint64_t>(nodes) * 21);
    } else {
      const unsigned conc = h >= static_cast<double>(opts.dfs_parallel_threshold)
                                ? p_cap
                                : task_conc(l);
      // Includes the node's C zero-fill (4h^2 words, no flops).
      add_phase("dfs-operands@L" + std::to_string(l),
                nodes * 10.0 * elems,
                nodes * (10.0 * 3.0 + 4.0) * elems * kWord, conc,
                dram_level(h, conc, l == 0), nodes * 10.0,
                h >= static_cast<double>(opts.dfs_parallel_threshold)
                    ? static_cast<std::uint64_t>(nodes) * 10
                    : 0,
                0);
    }
  }

  // Base products.
  {
    const double nodes = pow7(g.levels);
    const double b = static_cast<double>(g.base_dim);
    const double traffic = nodes * 3.0 * b * b * kWord;
    const unsigned c = task_conc(g.levels);
    const bool dram = 3.0 * b * b * kWord * window > llc;
    wp.add(sim::PhaseCost{
        .label = "base-products",
        .flops = nodes * 2.0 * b * b * b,
        .dram_bytes = dram ? traffic : 0.0,
        .cache_bytes = dram ? 0.0 : traffic,
        .parallelism = c,
        .efficiency = strassen::kBotsBaseKernelEfficiency,
        .imbalance = static_imbalance(nodes, c),
        .sync_events =
            threads > 1 ? static_cast<std::uint64_t>(
                              pow7(std::min(g.levels, opts.bfs_cutoff_depth)))
                        : 0,
        .spawn_events =
            threads > 1 ? static_cast<std::uint64_t>(
                              pow7(std::min(g.levels, opts.bfs_cutoff_depth)) * 7)
                        : 0,
    });
  }

  // Unwind sweep: combine phases, innermost first.
  for (std::size_t l = g.levels; l-- > 0;) {
    const double nodes = pow7(l);
    const double h = static_cast<double>(g.n >> (l + 1));
    const double elems = h * h;
    const bool bfs = l < opts.bfs_cutoff_depth;
    if (bfs) {
      const unsigned conc = static_cast<unsigned>(
          std::max(1.0, std::min<double>(nodes * 4.0, p_cap)));
      add_phase("bfs-combine@L" + std::to_string(l),
                nodes * 8.0 * elems, nodes * 8.0 * 3.0 * elems * kWord,
                conc, dram_level(h, conc, l == 0), nodes * 4.0,
                static_cast<std::uint64_t>(nodes),
                static_cast<std::uint64_t>(nodes) * 4);
    } else {
      const unsigned conc = h >= static_cast<double>(opts.dfs_parallel_threshold)
                                ? p_cap
                                : task_conc(l);
      add_phase("dfs-accumulate@L" + std::to_string(l),
                nodes * 12.0 * elems, nodes * 12.0 * 3.0 * elems * kWord,
                conc, dram_level(h, conc, l == 0), nodes * 12.0,
                h >= static_cast<double>(opts.dfs_parallel_threshold)
                    ? static_cast<std::uint64_t>(nodes) * 12
                    : 0,
                0);
    }
  }

  return wp;
}

}  // namespace capow::capsalg
