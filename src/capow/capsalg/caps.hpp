// Communication Avoiding Parallel Strassen (CAPS) — paper Section IV-C.
//
// CAPS views the Strassen recursion as a tree and decides per level
// whether to traverse breadth-first (BFS) or depth-first (DFS),
// following the paper's Algorithm 2:
//
//     if DEPTH < CUTOFF_DEPTH then execute Strassen BFS
//     else                         execute Strassen DFS
//
// * BFS level: all fourteen operand quadrant combinations are
//   materialized into private buffers up front ("requires additional
//   buffer memory"), then the seven sub-products execute in parallel on
//   disjoint workers, each owning its private operands — the
//   shared-memory analogue of CAPS's communication avoidance (no
//   re-streaming of parent data, no cross-worker working-set
//   interleaving).
// * DFS level: the seven sub-products run in sequence, each fully
//   work-shared across all participating workers.
//
// The paper's empirically chosen cutoff depth is 4; with a base cutoff
// of 64, problems up to 4096^2 run BFS at the top levels and DFS below.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>

#include "capow/abft/abft.hpp"
#include "capow/blas/microkernel.hpp"
#include "capow/blas/workspace.hpp"
#include "capow/linalg/matrix.hpp"
#include "capow/tasking/thread_pool.hpp"

namespace capow::capsalg {

/// Tuning knobs for capsalg::multiply.
struct CapsOptions {
  /// Dense base-kernel cutoff dimension (paper: 64).
  std::size_t base_cutoff = 64;
  /// Tree depth below which the traversal switches BFS -> DFS
  /// (paper: 4).
  std::size_t bfs_cutoff_depth = 4;
  /// Minimum quadrant dimension for work-sharing the DFS additions.
  std::size_t dfs_parallel_threshold = 256;
  /// Pool backing the BFS/DFS buffers (physical storage only — the
  /// CapsStats peak-buffer accounting still charges logical sizes, so
  /// the cost-model cross-check stays exact); null leases from
  /// blas::active_arena() (the dispatched backend's device pool, or the
  /// process arena outside any backend scope).
  blas::WorkspaceArena* arena = nullptr;
  /// When set, the dense base case runs through the packed registry
  /// microkernel (blas::small_gemm) instead of the BOTS-style kernel.
  std::optional<blas::MicroKernelId> base_kernel;
  /// ABFT protection (abft::resolve_mode semantics). Detect/correct add
  /// per-product checksum verification at the top BFS level — a damaged
  /// sub-product is re-materialized from its pristine parent quadrants
  /// and re-run — plus an end-to-end guard with bounded full retries.
  abft::AbftConfig abft{};
};

/// Execution statistics: the memory/communication trade CAPS makes.
struct CapsStats {
  std::uint64_t peak_buffer_bytes = 0;  ///< high-water buffer allocation
  std::uint64_t bfs_nodes = 0;          ///< recursion nodes run as BFS
  std::uint64_t dfs_nodes = 0;          ///< recursion nodes run as DFS
  std::uint64_t base_products = 0;      ///< dense base-case multiplies
};

/// C = A * B for square matrices via CAPS. Padding, validation and
/// instrumentation conventions match strassen::multiply. `stats`
/// (optional) receives the traversal statistics. Throws
/// std::invalid_argument for non-square operands or zero cutoffs.
void multiply(linalg::ConstMatrixView a, linalg::ConstMatrixView b,
              linalg::MatrixView c, const CapsOptions& opts = {},
              tasking::ThreadPool* pool = nullptr,
              CapsStats* stats = nullptr);

}  // namespace capow::capsalg
