#include "capow/capsalg/caps.hpp"

#include <array>
#include <atomic>
#include <optional>
#include <stdexcept>
#include <string>

#include "capow/abft/abft.hpp"
#include "capow/blas/blocked_gemm.hpp"
#include "capow/fault/fault.hpp"
#include "capow/linalg/ops.hpp"
#include "capow/linalg/partition.hpp"
#include "capow/strassen/base_kernel.hpp"
#include "capow/strassen/counted_ops.hpp"
#include "capow/tasking/parallel_for.hpp"
#include "capow/tasking/task_group.hpp"
#include "capow/telemetry/telemetry.hpp"
#include "capow/trace/counters.hpp"

namespace capow::capsalg {

namespace {

using linalg::ConstMatrixView;
using linalg::Matrix;
using linalg::MatrixView;
using linalg::Quadrants;
using strassen::counted_add;
using strassen::counted_add_inplace;
using strassen::counted_copy;
using strassen::counted_sub;
using strassen::counted_sub_inplace;

struct Ctx {
  CapsOptions opts;
  tasking::ThreadPool* pool;
  blas::WorkspaceArena* arena = nullptr;          ///< never null
  const blas::MicroKernel* base_kernel = nullptr; ///< null = BOTS kernel
  abft::AbftMode abft_mode = abft::AbftMode::kOff;
  double abft_tolerance = 1e-7;
  int abft_retries = 2;
  bool flips = false;           ///< flip fault sites armed this run
  std::uint64_t flip_salt = 0;  ///< set once per top-level attempt
  std::atomic<std::uint64_t> cur_bytes{0};
  std::atomic<std::uint64_t> peak_bytes{0};
  std::atomic<std::uint64_t> bfs_nodes{0};
  std::atomic<std::uint64_t> dfs_nodes{0};
  std::atomic<std::uint64_t> base_products{0};

  void track_alloc(std::uint64_t bytes) {
    const std::uint64_t now =
        cur_bytes.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    std::uint64_t peak = peak_bytes.load(std::memory_order_relaxed);
    while (now > peak && !peak_bytes.compare_exchange_weak(
                             peak, now, std::memory_order_relaxed)) {
    }
  }
  void track_free(std::uint64_t bytes) {
    cur_bytes.fetch_sub(bytes, std::memory_order_relaxed);
  }
};

/// An h x h scratch matrix whose allocation is charged against the CAPS
/// buffer high-water mark (the "additional buffer memory" of BFS).
/// Physical storage comes from the workspace arena; the *logical* charge
/// stays the exact h*h*8 the cost model predicts, independent of arena
/// size-class rounding or pool reuse.
class TrackedMatrix {
 public:
  TrackedMatrix(Ctx& ctx, std::size_t h)
      : ctx_(&ctx), bytes_(h * h * sizeof(double)), m_(*ctx.arena, h, h) {
    ctx_->track_alloc(bytes_);
  }
  ~TrackedMatrix() { ctx_->track_free(bytes_); }
  TrackedMatrix(const TrackedMatrix&) = delete;
  TrackedMatrix& operator=(const TrackedMatrix&) = delete;

  MatrixView view() { return m_.view(); }
  ConstMatrixView cview() const { return m_.view(); }

 private:
  Ctx* ctx_;
  std::uint64_t bytes_;
  blas::ArenaMatrix m_;
};

void recurse(ConstMatrixView a, ConstMatrixView b, MatrixView c, Ctx& ctx,
             std::size_t depth);

// Materializes BFS operand i of the A side (classic scheme) into dst.
void materialize_a(int i, const Quadrants<ConstMatrixView>& qa,
                   MatrixView dst) {
  switch (i) {
    case 0: counted_add(qa.q11, qa.q22, dst); break;
    case 1: counted_add(qa.q21, qa.q22, dst); break;
    case 2: counted_copy(qa.q11, dst); break;
    case 3: counted_copy(qa.q22, dst); break;
    case 4: counted_add(qa.q11, qa.q12, dst); break;
    case 5: counted_sub(qa.q21, qa.q11, dst); break;
    case 6: counted_sub(qa.q12, qa.q22, dst); break;
    default: break;
  }
}

void materialize_b(int i, const Quadrants<ConstMatrixView>& qb,
                   MatrixView dst) {
  switch (i) {
    case 0: counted_add(qb.q11, qb.q22, dst); break;
    case 1: counted_copy(qb.q11, dst); break;
    case 2: counted_sub(qb.q12, qb.q22, dst); break;
    case 3: counted_sub(qb.q21, qb.q11, dst); break;
    case 4: counted_copy(qb.q22, dst); break;
    case 5: counted_add(qb.q11, qb.q12, dst); break;
    case 6: counted_add(qb.q21, qb.q22, dst); break;
    default: break;
  }
}

// ---- BFS level ----------------------------------------------------------
//
// All 14 operand combinations are buffered up front, then the 7
// sub-products run as parallel tasks over disjoint private data, and the
// quadrants of C are assembled in parallel.
void bfs_step(ConstMatrixView a, ConstMatrixView b, MatrixView c, Ctx& ctx,
              std::size_t depth) {
  CAPOW_TSPAN_ARGS2("caps.bfs", "caps", "depth", depth, "n", a.rows());
  ctx.bfs_nodes.fetch_add(1, std::memory_order_relaxed);
  const auto qa = linalg::partition(a);
  const auto qb = linalg::partition(b);
  const auto qc = linalg::partition(c);
  const std::size_t h = a.rows() / 2;

  // In-place optionals, not unique_ptr: the buffers themselves lease
  // arena storage, and the handles must not re-introduce a heap
  // allocation per node.
  std::array<std::optional<TrackedMatrix>, 7> la;
  std::array<std::optional<TrackedMatrix>, 7> lb;
  std::array<std::optional<TrackedMatrix>, 7> q;
  for (int i = 0; i < 7; ++i) {
    la[i].emplace(ctx, h);
    lb[i].emplace(ctx, h);
    q[i].emplace(ctx, h);
  }

  const bool parallel = ctx.pool != nullptr && ctx.pool->concurrency() > 1;

  // Stage 1: materialize the 14 private operands.
  if (parallel) {
    tasking::TaskGroup group(*ctx.pool);
    for (int i = 0; i < 7; ++i) {
      trace::count_task_spawn(2);
      group.run([&, i] {
        if (group.cancelled()) return;
        materialize_a(i, qa, la[i]->view());
      });
      group.run([&, i] {
        if (group.cancelled()) return;
        materialize_b(i, qb, lb[i]->view());
      });
    }
    group.wait();
    trace::count_sync();
  } else {
    for (int i = 0; i < 7; ++i) {
      materialize_a(i, qa, la[i]->view());
      materialize_b(i, qb, lb[i]->view());
    }
  }

  // Stage 2: the seven sub-products, breadth-first on disjoint workers.
  // At the top level each product can run checksum-guarded: the private
  // operands make recovery cheap — a damaged product is re-materialized
  // from the pristine parent quadrants and re-run, without touching its
  // siblings. Deeper flips still surface in the depth-0 checksums.
  const bool protect =
      depth == 0 && (ctx.abft_mode != abft::AbftMode::kOff || ctx.flips);
  const auto product = [&](int i) {
    if (!protect) {
      recurse(la[i]->cview(), lb[i]->cview(), q[i]->view(), ctx, depth + 1);
      return;
    }
    const std::uint64_t site =
        fault::key(0xca95u, ctx.flip_salt, static_cast<std::uint64_t>(i));
    for (int attempt = 0;; ++attempt) {
      if (attempt > 0) {
        // Restore the operands from the pristine parents: a compute.flip
        // corrupted the private copies, never the caller's quadrants.
        materialize_a(i, qa, la[i]->view());
        materialize_b(i, qb, lb[i]->view());
      }
      std::optional<abft::AbftGuard> guard;
      if (ctx.abft_mode != abft::AbftMode::kOff) {
        guard.emplace(la[i]->cview(), lb[i]->cview(), *ctx.arena,
                      ctx.abft_tolerance);
      }
      const std::uint64_t akey =
          fault::key(site, static_cast<std::uint64_t>(attempt));
      abft::inject_flip(fault::Site::kComputeFlip, fault::key(akey, 1),
                        la[i]->view());
      abft::inject_flip(fault::Site::kComputeFlip, fault::key(akey, 2),
                        lb[i]->view());
      recurse(la[i]->cview(), lb[i]->cview(), q[i]->view(), ctx, depth + 1);
      abft::inject_flip(fault::Site::kMemFlip, fault::key(akey, 3),
                        q[i]->view());
      if (!guard) return;
      const abft::VerifyReport rep = guard->verify(q[i]->cview());
      if (rep.ok) return;
      if (ctx.abft_mode == abft::AbftMode::kDetect) {
        throw abft::AbftError(
            "abft: silent corruption detected in caps product " +
            std::to_string(i + 1));
      }
      if (attempt >= ctx.abft_retries) {
        throw abft::AbftError("abft: caps product " + std::to_string(i + 1) +
                              " still corrupt after " +
                              std::to_string(attempt + 1) + " attempt(s)");
      }
      abft::record_recomputed();
    }
  };
  if (parallel) {
    tasking::TaskGroup group(*ctx.pool);
    for (int i = 0; i < 7; ++i) {
      trace::count_task_spawn();
      group.run([&, i] {
        if (group.cancelled()) return;  // a sibling sub-product failed
        product(i);
      });
    }
    group.wait();
    trace::count_sync();
  } else {
    for (int i = 0; i < 7; ++i) product(i);
  }

  // Stage 3: assemble C (one job per quadrant).
  const auto combine = [&](int quadrant) {
    switch (quadrant) {
      case 0:  // C11 = Q1 + Q4 - Q5 + Q7
        counted_add(q[0]->cview(), q[3]->cview(), qc.q11);
        counted_sub_inplace(qc.q11, q[4]->cview());
        counted_add_inplace(qc.q11, q[6]->cview());
        break;
      case 1:  // C12 = Q3 + Q5
        counted_add(q[2]->cview(), q[4]->cview(), qc.q12);
        break;
      case 2:  // C21 = Q2 + Q4
        counted_add(q[1]->cview(), q[3]->cview(), qc.q21);
        break;
      case 3:  // C22 = Q1 - Q2 + Q3 + Q6
        counted_sub(q[0]->cview(), q[1]->cview(), qc.q22);
        counted_add_inplace(qc.q22, q[2]->cview());
        counted_add_inplace(qc.q22, q[5]->cview());
        break;
      default:
        break;
    }
  };
  if (parallel) {
    tasking::TaskGroup group(*ctx.pool);
    for (int quad = 0; quad < 4; ++quad) {
      trace::count_task_spawn();
      group.run([&combine, quad] { combine(quad); });
    }
    group.wait();
    trace::count_sync();
  } else {
    for (int quad = 0; quad < 4; ++quad) combine(quad);
  }
}

// ---- DFS level ----------------------------------------------------------
//
// The seven sub-products run in sequence; additions are work-shared
// across all workers when the quadrants are large enough. Only one
// product buffer is live at a time (the memory the BFS levels trade
// away), with results streamed into C via in-place accumulation.

// Work-shares a counted binary op over row blocks when profitable.
template <typename Op>
void shared_rows(Ctx& ctx, std::size_t rows, Op&& op) {
  if (ctx.pool != nullptr && ctx.pool->concurrency() > 1 &&
      rows >= ctx.opts.dfs_parallel_threshold) {
    tasking::parallel_for(*ctx.pool, 0, rows, op);
    trace::count_sync();
  } else {
    op(0, rows);
  }
}

void dfs_add(Ctx& ctx, ConstMatrixView a, ConstMatrixView b,
             MatrixView dst) {
  shared_rows(ctx, dst.rows(), [&](std::size_t lo, std::size_t hi) {
    counted_add(a.block(lo, 0, hi - lo, a.cols()),
                b.block(lo, 0, hi - lo, b.cols()),
                dst.block(lo, 0, hi - lo, dst.cols()));
  });
}

void dfs_sub(Ctx& ctx, ConstMatrixView a, ConstMatrixView b,
             MatrixView dst) {
  shared_rows(ctx, dst.rows(), [&](std::size_t lo, std::size_t hi) {
    counted_sub(a.block(lo, 0, hi - lo, a.cols()),
                b.block(lo, 0, hi - lo, b.cols()),
                dst.block(lo, 0, hi - lo, dst.cols()));
  });
}

void dfs_acc(Ctx& ctx, MatrixView dst, ConstMatrixView src, bool negate) {
  shared_rows(ctx, dst.rows(), [&](std::size_t lo, std::size_t hi) {
    auto d = dst.block(lo, 0, hi - lo, dst.cols());
    auto s = src.block(lo, 0, hi - lo, src.cols());
    if (negate) {
      counted_sub_inplace(d, s);
    } else {
      counted_add_inplace(d, s);
    }
  });
}

void dfs_step(ConstMatrixView a, ConstMatrixView b, MatrixView c, Ctx& ctx,
              std::size_t depth) {
  CAPOW_TSPAN_ARGS2("caps.dfs", "caps", "depth", depth, "n", a.rows());
  ctx.dfs_nodes.fetch_add(1, std::memory_order_relaxed);
  const auto qa = linalg::partition(a);
  const auto qb = linalg::partition(b);
  const auto qc = linalg::partition(c);
  const std::size_t h = a.rows() / 2;

  c.zero();
  trace::count_dram_write(c.size() * sizeof(double));

  TrackedMatrix q(ctx, h);
  for (int i = 0; i < 7; ++i) {
    // Form this product's operands (transient temporaries only).
    {
      std::optional<TrackedMatrix> ta;
      std::optional<TrackedMatrix> tb;
      ConstMatrixView lhs;
      ConstMatrixView rhs;
      switch (i) {
        case 0:
          ta.emplace(ctx, h);
          tb.emplace(ctx, h);
          dfs_add(ctx, qa.q11, qa.q22, ta->view());
          dfs_add(ctx, qb.q11, qb.q22, tb->view());
          lhs = ta->cview();
          rhs = tb->cview();
          break;
        case 1:
          ta.emplace(ctx, h);
          dfs_add(ctx, qa.q21, qa.q22, ta->view());
          lhs = ta->cview();
          rhs = qb.q11;
          break;
        case 2:
          tb.emplace(ctx, h);
          dfs_sub(ctx, qb.q12, qb.q22, tb->view());
          lhs = qa.q11;
          rhs = tb->cview();
          break;
        case 3:
          tb.emplace(ctx, h);
          dfs_sub(ctx, qb.q21, qb.q11, tb->view());
          lhs = qa.q22;
          rhs = tb->cview();
          break;
        case 4:
          ta.emplace(ctx, h);
          dfs_add(ctx, qa.q11, qa.q12, ta->view());
          lhs = ta->cview();
          rhs = qb.q22;
          break;
        case 5:
          ta.emplace(ctx, h);
          tb.emplace(ctx, h);
          dfs_sub(ctx, qa.q21, qa.q11, ta->view());
          dfs_add(ctx, qb.q11, qb.q12, tb->view());
          lhs = ta->cview();
          rhs = tb->cview();
          break;
        case 6:
          ta.emplace(ctx, h);
          tb.emplace(ctx, h);
          dfs_sub(ctx, qa.q12, qa.q22, ta->view());
          dfs_add(ctx, qb.q21, qb.q22, tb->view());
          lhs = ta->cview();
          rhs = tb->cview();
          break;
        default:
          break;
      }
      recurse(lhs, rhs, q.view(), ctx, depth + 1);
    }
    // Stream the product into the C quadrants it contributes to.
    switch (i) {
      case 0:  // Q1: +C11 +C22
        dfs_acc(ctx, qc.q11, q.cview(), false);
        dfs_acc(ctx, qc.q22, q.cview(), false);
        break;
      case 1:  // Q2: +C21 -C22
        dfs_acc(ctx, qc.q21, q.cview(), false);
        dfs_acc(ctx, qc.q22, q.cview(), true);
        break;
      case 2:  // Q3: +C12 +C22
        dfs_acc(ctx, qc.q12, q.cview(), false);
        dfs_acc(ctx, qc.q22, q.cview(), false);
        break;
      case 3:  // Q4: +C11 +C21
        dfs_acc(ctx, qc.q11, q.cview(), false);
        dfs_acc(ctx, qc.q21, q.cview(), false);
        break;
      case 4:  // Q5: -C11 +C12
        dfs_acc(ctx, qc.q11, q.cview(), true);
        dfs_acc(ctx, qc.q12, q.cview(), false);
        break;
      case 5:  // Q6: +C22
        dfs_acc(ctx, qc.q22, q.cview(), false);
        break;
      case 6:  // Q7: +C11
        dfs_acc(ctx, qc.q11, q.cview(), false);
        break;
      default:
        break;
    }
  }
}

void recurse(ConstMatrixView a, ConstMatrixView b, MatrixView c, Ctx& ctx,
             std::size_t depth) {
  const std::size_t n = a.rows();
  if (n <= ctx.opts.base_cutoff) {
    ctx.base_products.fetch_add(1, std::memory_order_relaxed);
    if (ctx.base_kernel != nullptr) {
      blas::small_gemm(a, b, c, *ctx.base_kernel, *ctx.arena);
    } else {
      strassen::base_gemm(a, b, c);
    }
    return;
  }
  if (depth < ctx.opts.bfs_cutoff_depth) {
    bfs_step(a, b, c, ctx, depth);
  } else {
    dfs_step(a, b, c, ctx, depth);
  }
}

}  // namespace

void multiply(ConstMatrixView a, ConstMatrixView b, MatrixView c,
              const CapsOptions& opts, tasking::ThreadPool* pool,
              CapsStats* stats) {
  if (!a.square() || !b.square() || !c.square() || a.rows() != b.rows() ||
      a.rows() != c.rows()) {
    throw std::invalid_argument(
        "capsalg::multiply: operands must be square with equal dimension");
  }
  if (opts.base_cutoff == 0) {
    throw std::invalid_argument("capsalg::multiply: base_cutoff == 0");
  }

  // Explicit option first, then the CAPOW_KERNEL environment override
  // (applied here so direct callers and the facade agree), else the
  // BOTS loop kernel.
  const std::optional<blas::MicroKernelId> base =
      opts.base_kernel ? opts.base_kernel : blas::env_kernel_override();
  Ctx ctx{opts, pool,
          opts.arena != nullptr ? opts.arena : &blas::active_arena(),
          base ? blas::find_kernel(*base) : nullptr};
  if (base && !ctx.base_kernel->supported()) {
    throw std::runtime_error(
        std::string("capsalg::multiply: base kernel '") +
        ctx.base_kernel->name + "' is not supported by this CPU");
  }
  ctx.abft_mode = abft::resolve_mode(opts.abft);
  ctx.abft_tolerance = opts.abft.tolerance;
  ctx.abft_retries = opts.abft.max_retries;
  ctx.flips = abft::flips_armed();

  const std::size_t n = a.rows();
  CAPOW_TSPAN_ARGS2("caps.multiply", "caps", "n", n, "bfs_cutoff_depth",
                    opts.bfs_cutoff_depth);
  if (n == 0) {
    if (stats != nullptr) *stats = CapsStats{};
    return;
  }

  // Ctx is shared (the traversal counters are atomics), so the
  // per-attempt flip salt is set here, at the only single-threaded point.
  const auto compute = [&](std::uint64_t salt) {
    ctx.flip_salt = salt;
    if (n <= opts.base_cutoff) {
      ctx.base_products.fetch_add(1, std::memory_order_relaxed);
      if (ctx.base_kernel != nullptr) {
        blas::small_gemm(a, b, c, *ctx.base_kernel, *ctx.arena);
      } else {
        strassen::base_gemm(a, b, c);
      }
    } else {
      const std::size_t padded =
          linalg::pad_dimension_for_recursion(n, opts.base_cutoff);
      if (padded == n) {
        recurse(a, b, c, ctx, 0);
      } else {
        blas::ArenaMatrix ap(*ctx.arena, padded, padded);
        blas::ArenaMatrix bp(*ctx.arena, padded, padded);
        blas::ArenaMatrix cp(*ctx.arena, padded, padded);
        linalg::copy_padded(a, ap.view());
        linalg::copy_padded(b, bp.view());
        trace::count_dram_read(2 * n * n * sizeof(double));
        trace::count_dram_write(2 * padded * padded * sizeof(double));
        ctx.track_alloc(3 * padded * padded * sizeof(double));
        recurse(ap.view(), bp.view(), cp.view(), ctx, 0);
        counted_copy(cp.view().block(0, 0, n, n), c);
        ctx.track_free(3 * padded * padded * sizeof(double));
      }
    }
    // Combine-stage / final-result corruption site — only the
    // end-to-end guard below can see it.
    if (ctx.flips) {
      abft::inject_flip(fault::Site::kMemFlip, fault::key(0xca9fu, salt), c);
    }
  };

  if (ctx.abft_mode == abft::AbftMode::kOff) {
    compute(0);
  } else {
    const abft::AbftGuard guard(a, b, *ctx.arena, ctx.abft_tolerance);
    for (int attempt = 0;; ++attempt) {
      compute(static_cast<std::uint64_t>(attempt));
      const abft::VerifyReport rep = guard.verify(c);
      if (rep.ok) break;
      if (ctx.abft_mode == abft::AbftMode::kDetect) {
        throw abft::AbftError(
            "abft: silent corruption detected in capsalg::multiply result");
      }
      if (attempt >= ctx.abft_retries) {
        throw abft::AbftError(
            "abft: capsalg::multiply result still corrupt after " +
            std::to_string(attempt + 1) + " attempt(s)");
      }
      abft::record_retried();
    }
  }

  if (stats != nullptr) {
    stats->peak_buffer_bytes =
        ctx.peak_bytes.load(std::memory_order_relaxed);
    stats->bfs_nodes = ctx.bfs_nodes.load(std::memory_order_relaxed);
    stats->dfs_nodes = ctx.dfs_nodes.load(std::memory_order_relaxed);
    stats->base_products =
        ctx.base_products.load(std::memory_order_relaxed);
  }
}

}  // namespace capow::capsalg
