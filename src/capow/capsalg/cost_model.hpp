// Closed-form cost model for CAPS, mirroring caps.cpp exactly.
//
// Per BFS node (half-dimension h): 10 binary operand ops + 4 operand
// copies (the extra buffering) + 8 combine ops. Per DFS node: a C
// zero-fill, 10 operand ops and 12 streaming accumulations (DFS keeps
// only one product buffer live, paying more adds to save memory). Raw
// totals match the instrumentation byte-for-byte.
//
// The communication-avoidance property appears here as the *absence* of
// the untied-task interleave factor the classic Strassen model pays:
// BFS levels own disjoint operand buffers per worker, so above-LLC
// addition traffic streams once.
#pragma once

#include <cstddef>

#include "capow/capsalg/caps.hpp"
#include "capow/machine/machine.hpp"
#include "capow/sim/cost_profile.hpp"

namespace capow::capsalg {

/// Cost-model configuration (mirror of CapsOptions).
struct CapsCostOptions {
  std::size_t base_cutoff = 64;
  std::size_t bfs_cutoff_depth = 4;
  std::size_t dfs_parallel_threshold = 256;
};

/// Total flops capsalg::multiply() executes for dimension n.
double caps_total_flops(std::size_t n, const CapsCostOptions& opts);

/// Total logical traffic (bytes) the instrumentation counts.
double caps_total_traffic_bytes(std::size_t n, const CapsCostOptions& opts);

/// Peak tracked buffer bytes capsalg::multiply() allocates (the BFS
/// memory-for-communication trade), assuming serial buffer lifetime
/// along one BFS spine: 21 quadrant buffers per live BFS level plus the
/// DFS transient set.
double caps_peak_buffer_bytes(std::size_t n, const CapsCostOptions& opts);

/// Simulator work profile for an n x n CAPS multiply.
sim::WorkProfile caps_profile(std::size_t n,
                              const machine::MachineSpec& spec,
                              unsigned threads,
                              const CapsCostOptions& opts = {});

}  // namespace capow::capsalg
