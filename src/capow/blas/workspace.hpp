// Pooled packing/temporary workspaces for the matmul hot paths.
//
// Blocked GEMM packs a kc x nc B panel plus an mc x kc A block per
// iteration; Strassen and the CAPS DFS base case additionally need
// quadrant-sized temporaries at every recursion level. The seed
// allocated all of these fresh on each call, which (a) costs
// page-faulting mallocs on the hot path and (b) forfeits the LLC/L2
// residency a reused buffer would keep across recursion levels and
// harness runs.
//
// WorkspaceArena is a mutex-guarded best-fit pool of 64-byte-aligned
// buffers. acquire() hands out a RAII Checkout that returns the buffer
// on destruction; repeat acquisitions of hot sizes are free-list hits.
// Sizes are rounded up to 4 KiB classes so slightly-different panel
// shapes (edge blocks) still share buffers. Arena traffic is *physical*
// scratch — it deliberately moves none of the capow::trace logical
// counters, which continue to model algorithmic traffic exactly.
//
// ArenaStats exposes hit/miss/outstanding counters for telemetry and
// for the "zero hot-path allocations after warm-up" assertions.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "capow/linalg/matrix.hpp"

namespace capow::blas {

class WorkspaceArena;

/// RAII lease of one arena buffer; movable, returns on destruction.
class WorkspaceCheckout {
 public:
  WorkspaceCheckout() = default;
  WorkspaceCheckout(WorkspaceCheckout&& other) noexcept
      : arena_(std::exchange(other.arena_, nullptr)),
        data_(std::exchange(other.data_, nullptr)),
        capacity_(std::exchange(other.capacity_, 0)) {}
  WorkspaceCheckout& operator=(WorkspaceCheckout&& other) noexcept;
  WorkspaceCheckout(const WorkspaceCheckout&) = delete;
  WorkspaceCheckout& operator=(const WorkspaceCheckout&) = delete;
  ~WorkspaceCheckout() { release(); }

  double* data() const noexcept { return data_; }
  /// Usable capacity in doubles (>= the requested count).
  std::size_t capacity() const noexcept { return capacity_; }
  bool valid() const noexcept { return data_ != nullptr; }

  /// Returns the buffer to the arena early.
  void release() noexcept;

 private:
  friend class WorkspaceArena;
  WorkspaceCheckout(WorkspaceArena* arena, double* data,
                    std::size_t capacity) noexcept
      : arena_(arena), data_(data), capacity_(capacity) {}

  WorkspaceArena* arena_ = nullptr;
  double* data_ = nullptr;
  std::size_t capacity_ = 0;
};

/// Arena usage counters (monotonic except outstanding_bytes).
struct ArenaStats {
  std::uint64_t acquires = 0;  ///< total acquire() calls
  std::uint64_t hits = 0;      ///< served from the free list
  std::uint64_t misses = 0;    ///< required a fresh allocation
  std::uint64_t allocated_bytes = 0;  ///< lifetime bytes malloc'd
  std::uint64_t pooled_bytes = 0;     ///< bytes idle in the free list
  std::uint64_t outstanding_bytes = 0;       ///< bytes checked out now
  std::uint64_t peak_outstanding_bytes = 0;  ///< high-water outstanding

  /// Fraction of acquires served without allocating; 1.0 when idle.
  double hit_rate() const noexcept {
    return acquires == 0 ? 1.0
                         : static_cast<double>(hits) /
                               static_cast<double>(acquires);
  }
};

/// Mutex-guarded best-fit pool of aligned double buffers.
class WorkspaceArena {
 public:
  WorkspaceArena() = default;
  WorkspaceArena(const WorkspaceArena&) = delete;
  WorkspaceArena& operator=(const WorkspaceArena&) = delete;
  ~WorkspaceArena();

  /// Leases a buffer of at least `count` doubles. Thread-safe.
  WorkspaceCheckout acquire(std::size_t count);

  /// Current counters (snapshot under the lock).
  ArenaStats stats() const;

  /// Frees every idle pooled buffer (checked-out leases are unaffected).
  void trim();

  /// Zeroes the hit/miss counters; pooled buffers stay pooled. Used by
  /// benches to measure the warm steady state separately from warm-up.
  void reset_stats();

  /// The process-wide default arena threaded through capow::matmul when
  /// the caller does not supply one. Never destroyed (intentionally
  /// leaked) so checkouts on detached threads stay valid at exit.
  static WorkspaceArena& process_arena();

 private:
  friend class WorkspaceCheckout;
  void release_buffer(double* data, std::size_t capacity) noexcept;

  struct Pooled {
    double* data;
    std::size_t capacity;  ///< doubles
  };

  mutable std::mutex mu_;
  std::vector<Pooled> free_;
  ArenaStats stats_;
};

/// The calling thread's ambient arena: the pool a null-`arena` caller
/// leases from. Defaults to WorkspaceArena::process_arena(); a device
/// dispatch layer above blas installs its own pool via ArenaScope so
/// every nested lease lands in the dispatched device's memory without
/// threading a pointer through each recursion level.
WorkspaceArena& active_arena() noexcept;

/// RAII override of the calling thread's ambient arena.
class ArenaScope {
 public:
  explicit ArenaScope(WorkspaceArena& arena) noexcept;
  ~ArenaScope();
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  WorkspaceArena* prev_;
};

/// Matrix-shaped lease: rows x cols over arena storage. Like
/// Matrix(rows, cols), contents are indeterminate (here: whatever the
/// previous lease left) — write before reading.
class ArenaMatrix {
 public:
  ArenaMatrix(WorkspaceArena& arena, std::size_t rows, std::size_t cols)
      : lease_(arena.acquire(rows * cols)), rows_(rows), cols_(cols) {}
  ArenaMatrix(ArenaMatrix&&) noexcept = default;
  ArenaMatrix& operator=(ArenaMatrix&&) noexcept = default;

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  linalg::MatrixView view() noexcept {
    return {lease_.data(), rows_, cols_, cols_};
  }
  linalg::ConstMatrixView view() const noexcept {
    return {lease_.data(), rows_, cols_, cols_};
  }
  linalg::ConstMatrixView cview() const noexcept { return view(); }

  double& operator()(std::size_t i, std::size_t j) noexcept {
    return lease_.data()[i * cols_ + j];
  }
  double operator()(std::size_t i, std::size_t j) const noexcept {
    return lease_.data()[i * cols_ + j];
  }

 private:
  WorkspaceCheckout lease_;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
};

/// N equally-shaped ArenaMatrix leases without any heap container
/// (std::vector would itself allocate on the hot path).
template <std::size_t N>
std::array<ArenaMatrix, N> make_arena_matrices(WorkspaceArena& arena,
                                               std::size_t rows,
                                               std::size_t cols) {
  return [&]<std::size_t... I>(std::index_sequence<I...>) {
    return std::array<ArenaMatrix, N>{
        ((void)I, ArenaMatrix(arena, rows, cols))...};
  }(std::make_index_sequence<N>{});
}

}  // namespace capow::blas
