#include "capow/blas/microkernel.hpp"

#include <immintrin.h>

#include <algorithm>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <string>

namespace capow::blas {

namespace {

// ---------------------------------------------------------------------
// Pack routines. Layout is shared by every kernel — only the stripe
// height/width differs — so one template instantiates all variants.
// A: mr-high row stripes, stripe-major -> k-index -> row-in-stripe.
// B: nr-wide column stripes, stripe-major -> k-index -> column.
// Edges are zero-padded to the full stripe so kernels never branch.
// ---------------------------------------------------------------------

template <std::size_t MR>
void pack_a_t(linalg::ConstMatrixView a, std::size_t ic, std::size_t pc,
              std::size_t mc, std::size_t kc, double* buf) {
  std::size_t out = 0;
  for (std::size_t ir = 0; ir < mc; ir += MR) {
    const std::size_t rows = std::min(MR, mc - ir);
    for (std::size_t p = 0; p < kc; ++p) {
      for (std::size_t r = 0; r < MR; ++r) {
        buf[out++] = r < rows ? a(ic + ir + r, pc + p) : 0.0;
      }
    }
  }
}

template <std::size_t NR>
void pack_b_t(linalg::ConstMatrixView b, std::size_t pc, std::size_t jc,
              std::size_t kc, std::size_t nc, double* buf) {
  std::size_t out = 0;
  for (std::size_t jr = 0; jr < nc; jr += NR) {
    const std::size_t cols = std::min(NR, nc - jr);
    for (std::size_t p = 0; p < kc; ++p) {
      const double* brow = b.row(pc + p);
      for (std::size_t cdx = 0; cdx < NR; ++cdx) {
        buf[out++] = cdx < cols ? brow[jc + jr + cdx] : 0.0;
      }
    }
  }
}

// ---------------------------------------------------------------------
// generic — portable scalar 4x4 tile (the seed's microkernel shape).
// ---------------------------------------------------------------------

void kernel_generic_4x4(const double* astripe, const double* bstripe,
                        std::size_t kc, double* c, std::size_t ldc) {
  double acc[4][4] = {};
  for (std::size_t p = 0; p < kc; ++p) {
    const double* ap = astripe + p * 4;
    const double* bp = bstripe + p * 4;
    for (std::size_t r = 0; r < 4; ++r) {
      const double ar = ap[r];
      for (std::size_t j = 0; j < 4; ++j) acc[r][j] += ar * bp[j];
    }
  }
  for (std::size_t r = 0; r < 4; ++r) {
    double* crow = c + r * ldc;
    for (std::size_t j = 0; j < 4; ++j) crow[j] += acc[r][j];
  }
}

bool supported_generic() { return true; }

// ---------------------------------------------------------------------
// avx2 — 4x8 tile: 8 accumulator vectors of 4 doubles, separate
// multiply + add (no FMA), broadcast from the A stripe.
// ---------------------------------------------------------------------

__attribute__((target("avx2"))) void kernel_avx2_4x8(const double* astripe,
                                                     const double* bstripe,
                                                     std::size_t kc,
                                                     double* c,
                                                     std::size_t ldc) {
  __m256d acc00 = _mm256_setzero_pd(), acc01 = _mm256_setzero_pd();
  __m256d acc10 = _mm256_setzero_pd(), acc11 = _mm256_setzero_pd();
  __m256d acc20 = _mm256_setzero_pd(), acc21 = _mm256_setzero_pd();
  __m256d acc30 = _mm256_setzero_pd(), acc31 = _mm256_setzero_pd();
  for (std::size_t p = 0; p < kc; ++p) {
    const __m256d b0 = _mm256_loadu_pd(bstripe + p * 8);
    const __m256d b1 = _mm256_loadu_pd(bstripe + p * 8 + 4);
    const double* ap = astripe + p * 4;
    __m256d ar = _mm256_broadcast_sd(ap + 0);
    acc00 = _mm256_add_pd(acc00, _mm256_mul_pd(ar, b0));
    acc01 = _mm256_add_pd(acc01, _mm256_mul_pd(ar, b1));
    ar = _mm256_broadcast_sd(ap + 1);
    acc10 = _mm256_add_pd(acc10, _mm256_mul_pd(ar, b0));
    acc11 = _mm256_add_pd(acc11, _mm256_mul_pd(ar, b1));
    ar = _mm256_broadcast_sd(ap + 2);
    acc20 = _mm256_add_pd(acc20, _mm256_mul_pd(ar, b0));
    acc21 = _mm256_add_pd(acc21, _mm256_mul_pd(ar, b1));
    ar = _mm256_broadcast_sd(ap + 3);
    acc30 = _mm256_add_pd(acc30, _mm256_mul_pd(ar, b0));
    acc31 = _mm256_add_pd(acc31, _mm256_mul_pd(ar, b1));
  }
  double* crow = c;
  _mm256_storeu_pd(crow, _mm256_add_pd(_mm256_loadu_pd(crow), acc00));
  _mm256_storeu_pd(crow + 4, _mm256_add_pd(_mm256_loadu_pd(crow + 4), acc01));
  crow = c + ldc;
  _mm256_storeu_pd(crow, _mm256_add_pd(_mm256_loadu_pd(crow), acc10));
  _mm256_storeu_pd(crow + 4, _mm256_add_pd(_mm256_loadu_pd(crow + 4), acc11));
  crow = c + 2 * ldc;
  _mm256_storeu_pd(crow, _mm256_add_pd(_mm256_loadu_pd(crow), acc20));
  _mm256_storeu_pd(crow + 4, _mm256_add_pd(_mm256_loadu_pd(crow + 4), acc21));
  crow = c + 3 * ldc;
  _mm256_storeu_pd(crow, _mm256_add_pd(_mm256_loadu_pd(crow), acc30));
  _mm256_storeu_pd(crow + 4, _mm256_add_pd(_mm256_loadu_pd(crow + 4), acc31));
}

bool supported_avx2() { return __builtin_cpu_supports("avx2") != 0; }

// ---------------------------------------------------------------------
// fma — 6x8 tile, the BLIS Haswell shape: 12 independent accumulator
// vectors saturate the two FMA ports while staying within the 16
// architectural ymm registers (12 accumulators + 2 B vectors + 1 A
// broadcast + 1 spare).
// ---------------------------------------------------------------------

__attribute__((target("avx2,fma"))) void kernel_fma_6x8(
    const double* astripe, const double* bstripe, std::size_t kc, double* c,
    std::size_t ldc) {
  __m256d acc00 = _mm256_setzero_pd(), acc01 = _mm256_setzero_pd();
  __m256d acc10 = _mm256_setzero_pd(), acc11 = _mm256_setzero_pd();
  __m256d acc20 = _mm256_setzero_pd(), acc21 = _mm256_setzero_pd();
  __m256d acc30 = _mm256_setzero_pd(), acc31 = _mm256_setzero_pd();
  __m256d acc40 = _mm256_setzero_pd(), acc41 = _mm256_setzero_pd();
  __m256d acc50 = _mm256_setzero_pd(), acc51 = _mm256_setzero_pd();
  for (std::size_t p = 0; p < kc; ++p) {
    const __m256d b0 = _mm256_loadu_pd(bstripe + p * 8);
    const __m256d b1 = _mm256_loadu_pd(bstripe + p * 8 + 4);
    const double* ap = astripe + p * 6;
    __m256d ar = _mm256_broadcast_sd(ap + 0);
    acc00 = _mm256_fmadd_pd(ar, b0, acc00);
    acc01 = _mm256_fmadd_pd(ar, b1, acc01);
    ar = _mm256_broadcast_sd(ap + 1);
    acc10 = _mm256_fmadd_pd(ar, b0, acc10);
    acc11 = _mm256_fmadd_pd(ar, b1, acc11);
    ar = _mm256_broadcast_sd(ap + 2);
    acc20 = _mm256_fmadd_pd(ar, b0, acc20);
    acc21 = _mm256_fmadd_pd(ar, b1, acc21);
    ar = _mm256_broadcast_sd(ap + 3);
    acc30 = _mm256_fmadd_pd(ar, b0, acc30);
    acc31 = _mm256_fmadd_pd(ar, b1, acc31);
    ar = _mm256_broadcast_sd(ap + 4);
    acc40 = _mm256_fmadd_pd(ar, b0, acc40);
    acc41 = _mm256_fmadd_pd(ar, b1, acc41);
    ar = _mm256_broadcast_sd(ap + 5);
    acc50 = _mm256_fmadd_pd(ar, b0, acc50);
    acc51 = _mm256_fmadd_pd(ar, b1, acc51);
  }
  double* crow = c;
  _mm256_storeu_pd(crow, _mm256_add_pd(_mm256_loadu_pd(crow), acc00));
  _mm256_storeu_pd(crow + 4, _mm256_add_pd(_mm256_loadu_pd(crow + 4), acc01));
  crow = c + ldc;
  _mm256_storeu_pd(crow, _mm256_add_pd(_mm256_loadu_pd(crow), acc10));
  _mm256_storeu_pd(crow + 4, _mm256_add_pd(_mm256_loadu_pd(crow + 4), acc11));
  crow = c + 2 * ldc;
  _mm256_storeu_pd(crow, _mm256_add_pd(_mm256_loadu_pd(crow), acc20));
  _mm256_storeu_pd(crow + 4, _mm256_add_pd(_mm256_loadu_pd(crow + 4), acc21));
  crow = c + 3 * ldc;
  _mm256_storeu_pd(crow, _mm256_add_pd(_mm256_loadu_pd(crow), acc30));
  _mm256_storeu_pd(crow + 4, _mm256_add_pd(_mm256_loadu_pd(crow + 4), acc31));
  crow = c + 4 * ldc;
  _mm256_storeu_pd(crow, _mm256_add_pd(_mm256_loadu_pd(crow), acc40));
  _mm256_storeu_pd(crow + 4, _mm256_add_pd(_mm256_loadu_pd(crow + 4), acc41));
  crow = c + 5 * ldc;
  _mm256_storeu_pd(crow, _mm256_add_pd(_mm256_loadu_pd(crow), acc50));
  _mm256_storeu_pd(crow + 4, _mm256_add_pd(_mm256_loadu_pd(crow + 4), acc51));
}

bool supported_fma() {
  return __builtin_cpu_supports("avx2") != 0 &&
         __builtin_cpu_supports("fma") != 0;
}

constexpr MicroKernel kKernels[] = {
    {MicroKernelId::kGeneric, "generic", 4, 4, kernel_generic_4x4,
     pack_a_t<4>, pack_b_t<4>, supported_generic},
    {MicroKernelId::kAvx2, "avx2", 4, 8, kernel_avx2_4x8, pack_a_t<4>,
     pack_b_t<8>, supported_avx2},
    {MicroKernelId::kFma, "fma", 6, 8, kernel_fma_6x8, pack_a_t<6>,
     pack_b_t<8>, supported_fma},
};

}  // namespace

std::span<const MicroKernel> kernel_registry() noexcept { return kKernels; }

const MicroKernel* find_kernel(MicroKernelId id) noexcept {
  for (const MicroKernel& k : kKernels) {
    if (k.id == id) return &k;
  }
  return nullptr;
}

const MicroKernel* find_kernel(std::string_view name) noexcept {
  for (const MicroKernel& k : kKernels) {
    if (name == k.name) return &k;
  }
  return nullptr;
}

const MicroKernel* find_kernel_for_tile(std::size_t mr,
                                        std::size_t nr) noexcept {
  for (const MicroKernel& k : kKernels) {
    if (k.mr == mr && k.nr == nr) return &k;
  }
  return nullptr;
}

std::optional<MicroKernelId> env_kernel_override() {
  // Parsed exactly once: the override is a per-process experiment knob,
  // and re-reading it mid-run would let two halves of one measurement
  // disagree about the kernel.
  static std::once_flag flag;
  static std::optional<MicroKernelId> cached;
  static std::string error;
  std::call_once(flag, [] {
    const char* env = std::getenv("CAPOW_KERNEL");
    if (env == nullptr || *env == '\0') return;
    const std::string_view value(env);
    if (value == "auto") return;
    if (const MicroKernel* k = find_kernel(value)) {
      cached = k->id;
      return;
    }
    error = "CAPOW_KERNEL: unknown kernel '" + std::string(value) +
            "' (expected generic, avx2, fma, or auto)";
  });
  if (!error.empty()) throw std::invalid_argument(error);
  return cached;
}

const MicroKernel& select_kernel(std::optional<MicroKernelId> requested) {
  std::optional<MicroKernelId> want = requested;
  if (!want) want = env_kernel_override();
  if (want) {
    const MicroKernel* k = find_kernel(*want);
    if (k == nullptr || !k->supported()) {
      throw std::runtime_error(
          std::string("capow::blas: kernel '") +
          (k != nullptr ? k->name : "?") +
          "' is not supported by this CPU");
    }
    return *k;
  }
  const MicroKernel* best = nullptr;
  for (const MicroKernel& k : kKernels) {
    if (k.supported()) best = &k;
  }
  // The generic kernel is unconditionally supported, so best != null.
  return *best;
}

void run_micro_tile(const MicroKernel& k, const double* astripe,
                    const double* bstripe, std::size_t kc,
                    linalg::MatrixView c, std::size_t i0, std::size_t j0,
                    std::size_t rows, std::size_t cols) {
  if (rows == k.mr && cols == k.nr) {
    k.kernel(astripe, bstripe, kc, c.row(i0) + j0, c.ld());
    return;
  }
  // Edge tile: accumulate into zeroed scratch, add back the live window.
  alignas(64) double tile[kMaxMicroTileRows * kMaxMicroTileCols] = {};
  k.kernel(astripe, bstripe, kc, tile, k.nr);
  for (std::size_t r = 0; r < rows; ++r) {
    double* crow = c.row(i0 + r) + j0;
    const double* trow = tile + r * k.nr;
    for (std::size_t j = 0; j < cols; ++j) crow[j] += trow[j];
  }
}

}  // namespace capow::blas
