#include "capow/blas/blocked_gemm.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "capow/blas/gemm_ref.hpp"
#include "capow/fault/fault.hpp"
#include "capow/tasking/parallel_for.hpp"
#include "capow/telemetry/telemetry.hpp"
#include "capow/trace/counters.hpp"

namespace capow::blas {

namespace {

std::size_t round_up_multiple(std::size_t v, std::size_t m) {
  return ((v + m - 1) / m) * m;
}

// Multiplies one packed A block against the packed B panel, accumulating
// into the C tile anchored at (ic, jc).
void block_multiply(const MicroKernel& k, const double* packed_a,
                    const double* packed_b, std::size_t mc_cur,
                    std::size_t nc_cur, std::size_t kc_cur,
                    linalg::MatrixView c, std::size_t ic, std::size_t jc) {
  for (std::size_t jr = 0; jr < nc_cur; jr += k.nr) {
    const double* bstripe = packed_b + jr * kc_cur;
    const std::size_t cols = std::min(k.nr, nc_cur - jr);
    for (std::size_t ir = 0; ir < mc_cur; ir += k.mr) {
      const double* astripe = packed_a + ir * kc_cur;
      const std::size_t rows = std::min(k.mr, mc_cur - ir);
      run_micro_tile(k, astripe, bstripe, kc_cur, c, ic + ir, jc + jr, rows,
                     cols);
    }
  }
  // One C tile pass: read + write mc x nc, plus the 2*mc*nc*kc flops.
  trace::count_dram_read(mc_cur * nc_cur * sizeof(double));
  trace::count_dram_write(mc_cur * nc_cur * sizeof(double));
  trace::count_flops(2ull * mc_cur * nc_cur * kc_cur);
}

// Every registered kernel with the register tile that selects it
// ("generic=4x4, avx2=4x8, fma=6x8") — so tile/kernel mismatch errors
// tell the caller what the valid combinations are.
std::string kernel_tile_listing() {
  std::string s;
  for (const MicroKernel& k : kernel_registry()) {
    if (!s.empty()) s += ", ";
    s += k.name;
    s += "=";
    s += std::to_string(k.mr);
    s += "x";
    s += std::to_string(k.nr);
  }
  return s;
}

}  // namespace

const MicroKernel& resolve_kernel(const GemmOptions& opts) {
  if (opts.blocking) {
    const MicroKernel* k =
        find_kernel_for_tile(opts.blocking->mr, opts.blocking->nr);
    if (k == nullptr) {
      throw std::invalid_argument(
          "blocked_gemm: no registered microkernel matches the requested " +
          std::to_string(opts.blocking->mr) + "x" +
          std::to_string(opts.blocking->nr) +
          " tile (valid kernel=tile combinations: " + kernel_tile_listing() +
          ")");
    }
    if (opts.kernel && *opts.kernel != k->id) {
      throw std::invalid_argument(
          "blocked_gemm: requested kernel disagrees with the blocking "
          "parameters' " +
          std::to_string(opts.blocking->mr) + "x" +
          std::to_string(opts.blocking->nr) + " tile, which pins kernel '" +
          k->name +
          "' (valid kernel=tile combinations: " + kernel_tile_listing() +
          ")");
    }
    if (!k->supported()) {
      throw std::runtime_error(std::string("blocked_gemm: kernel '") +
                               k->name + "' is not supported by this CPU");
    }
    return *k;
  }
  return select_kernel(opts.kernel);
}

BlockingParams resolve_blocking(const GemmOptions& opts) {
  const MicroKernel& kern = resolve_kernel(opts);
  return opts.blocking ? *opts.blocking
         : opts.machine ? select_blocking(*opts.machine, kern)
                        : default_blocking_for(kern);
}

void gemm(linalg::ConstMatrixView a, linalg::ConstMatrixView b,
          linalg::MatrixView c, const GemmOptions& opts) {
  check_gemm_shapes(a, b, c);
  const MicroKernel& kern = resolve_kernel(opts);
  const BlockingParams bp = resolve_blocking(opts);
  WorkspaceArena& arena = opts.arena != nullptr ? *opts.arena : active_arena();
  tasking::ThreadPool* pool = opts.pool;

  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = b.cols();
  CAPOW_TSPAN_ARGS2("gemm.blocked", "blas", "m", m, "n", n);

  c.zero();
  trace::count_dram_write(m * n * sizeof(double));

  // Flip draws are keyed on (salt, panel coordinates, element) only, so
  // the injected-fault set is independent of thread interleaving.
  const std::uint64_t flip_base = fault::key(0xb1a5u, opts.fault_salt);

  for (std::size_t jc = 0; jc < n; jc += bp.nc) {
    const std::size_t nc_cur = std::min(bp.nc, n - jc);
    for (std::size_t pc = 0; pc < k; pc += bp.kc) {
      const std::size_t kc_cur = std::min(bp.kc, k - pc);
      CAPOW_TSPAN_ARGS2("gemm.panel", "blas", "jc", jc, "pc", pc);
      const std::size_t padded_nc = round_up_multiple(nc_cur, bp.nr);
      WorkspaceCheckout b_lease = arena.acquire(padded_nc * kc_cur);
      double* packed_b = b_lease.data();
      kern.pack_b(b, pc, jc, kc_cur, nc_cur, packed_b);
      trace::count_dram_read(kc_cur * nc_cur * sizeof(double));
      fault::maybe_flip(fault::Site::kComputeFlip,
                        fault::key(flip_base, jc, pc), packed_b, 1,
                        padded_nc * kc_cur, padded_nc * kc_cur);

      const std::size_t mblocks = (m + bp.mc - 1) / bp.mc;
      // Each worker leases one A buffer sized for a full mc block and
      // reuses it across all its row blocks.
      const std::size_t a_capacity =
          round_up_multiple(std::min(bp.mc, m), bp.mr) * kc_cur;
      auto body = [&](std::size_t blk_lo, std::size_t blk_hi) {
        WorkspaceCheckout a_lease = arena.acquire(a_capacity);
        double* packed_a = a_lease.data();
        for (std::size_t blk = blk_lo; blk < blk_hi; ++blk) {
          const std::size_t ic = blk * bp.mc;
          const std::size_t mc_cur = std::min(bp.mc, m - ic);
          kern.pack_a(a, ic, pc, mc_cur, kc_cur, packed_a);
          trace::count_dram_read(mc_cur * kc_cur * sizeof(double));
          block_multiply(kern, packed_a, packed_b, mc_cur, nc_cur, kc_cur, c,
                         ic, jc);
        }
      };
      if (pool != nullptr && pool->concurrency() > 1 && mblocks > 1) {
        tasking::parallel_for(*pool, 0, mblocks, body);
        trace::count_sync();
      } else {
        body(0, mblocks);
      }
    }
    // Silent in-memory corruption of the finished C column panel.
    linalg::MatrixView panel = c.block(0, jc, m, nc_cur);
    fault::maybe_flip(fault::Site::kMemFlip, fault::key(flip_base, 0xc0u, jc),
                      panel.data(), panel.rows(), panel.cols(), panel.ld());
  }
}

void small_gemm(linalg::ConstMatrixView a, linalg::ConstMatrixView b,
                linalg::MatrixView c, const MicroKernel& kern,
                WorkspaceArena& arena, bool accumulate) {
  check_gemm_shapes(a, b, c);
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = b.cols();
  const std::size_t padded_m = round_up_multiple(m, kern.mr);
  const std::size_t padded_n = round_up_multiple(n, kern.nr);

  // Both packed operands share one lease; B follows A.
  WorkspaceCheckout lease = arena.acquire((padded_m + padded_n) * k);
  double* packed_a = lease.data();
  double* packed_b = packed_a + padded_m * k;
  kern.pack_a(a, 0, 0, m, k, packed_a);
  kern.pack_b(b, 0, 0, k, n, packed_b);

  if (!accumulate) c.zero();
  for (std::size_t jr = 0; jr < n; jr += kern.nr) {
    const double* bstripe = packed_b + jr * k;
    const std::size_t cols = std::min(kern.nr, n - jr);
    for (std::size_t ir = 0; ir < m; ir += kern.mr) {
      const double* astripe = packed_a + ir * k;
      const std::size_t rows = std::min(kern.mr, m - ir);
      run_micro_tile(kern, astripe, bstripe, k, c, ir, jr, rows, cols);
    }
  }

  // Logical traffic identical to strassen::base_gemm so the packed base
  // case is cost-model-neutral: operands in, result out, 2mnk flops.
  trace::count_flops(2ull * m * n * k);
  trace::count_dram_read((m * k + k * n) * sizeof(double));
  trace::count_dram_write(m * n * sizeof(double));
}

}  // namespace capow::blas
