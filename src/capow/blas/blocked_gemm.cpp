#include "capow/blas/blocked_gemm.hpp"

#include <algorithm>
#include <vector>

#include "capow/blas/gemm_ref.hpp"
#include "capow/tasking/parallel_for.hpp"
#include "capow/telemetry/telemetry.hpp"
#include "capow/trace/counters.hpp"

namespace capow::blas {

namespace {

// Packs the mc_cur x kc_cur block of A anchored at (ic, pc) into
// mr-high row stripes laid out kernel-friendly: stripe-major, then
// k-index, then row-in-stripe. Edge rows are zero-padded so the kernel
// never branches on the A side.
void pack_a(linalg::ConstMatrixView a, std::size_t ic, std::size_t pc,
            std::size_t mc_cur, std::size_t kc_cur, std::size_t mr,
            double* buf) {
  std::size_t out = 0;
  for (std::size_t ir = 0; ir < mc_cur; ir += mr) {
    const std::size_t rows = std::min(mr, mc_cur - ir);
    for (std::size_t p = 0; p < kc_cur; ++p) {
      for (std::size_t r = 0; r < mr; ++r) {
        buf[out++] = r < rows ? a(ic + ir + r, pc + p) : 0.0;
      }
    }
  }
  trace::count_dram_read(mc_cur * kc_cur * sizeof(double));
}

// Packs the kc_cur x nc_cur panel of B anchored at (pc, jc) into nr-wide
// column stripes (stripe-major, then k-index, then column-in-stripe),
// zero-padding edge columns.
void pack_b(linalg::ConstMatrixView b, std::size_t pc, std::size_t jc,
            std::size_t kc_cur, std::size_t nc_cur, std::size_t nr,
            double* buf) {
  std::size_t out = 0;
  for (std::size_t jr = 0; jr < nc_cur; jr += nr) {
    const std::size_t cols = std::min(nr, nc_cur - jr);
    for (std::size_t p = 0; p < kc_cur; ++p) {
      const double* brow = b.row(pc + p);
      for (std::size_t cdx = 0; cdx < nr; ++cdx) {
        buf[out++] = cdx < cols ? brow[jc + jr + cdx] : 0.0;
      }
    }
  }
  trace::count_dram_read(kc_cur * nc_cur * sizeof(double));
}

// mr x nr register-tile microkernel over packed stripes:
//   Ctile += Astripe(kc x mr) * Bstripe(kc x nr)
// `rows`/`cols` handle C-edge tiles; the packed stripes are padded so
// the inner loop is always full-width.
template <std::size_t MR, std::size_t NR>
void micro_kernel(const double* astripe, const double* bstripe,
                  std::size_t kc_cur, linalg::MatrixView c, std::size_t i0,
                  std::size_t j0, std::size_t rows, std::size_t cols) {
  double acc[MR][NR] = {};
  for (std::size_t p = 0; p < kc_cur; ++p) {
    const double* ap = astripe + p * MR;
    const double* bp = bstripe + p * NR;
    for (std::size_t r = 0; r < MR; ++r) {
      const double ar = ap[r];
      for (std::size_t cdx = 0; cdx < NR; ++cdx) {
        acc[r][cdx] += ar * bp[cdx];
      }
    }
  }
  for (std::size_t r = 0; r < rows; ++r) {
    double* crow = c.row(i0 + r) + j0;
    for (std::size_t cdx = 0; cdx < cols; ++cdx) crow[cdx] += acc[r][cdx];
  }
}

struct AlignedScratch {
  std::vector<double> storage;
  double* get(std::size_t count) {
    if (storage.size() < count) storage.resize(count);
    return storage.data();
  }
};

// Multiplies one packed A block against the packed B panel, accumulating
// into the C tile anchored at (ic, jc).
void block_multiply(const double* packed_a, const double* packed_b,
                    std::size_t mc_cur, std::size_t nc_cur,
                    std::size_t kc_cur, const BlockingParams& bp,
                    linalg::MatrixView c, std::size_t ic, std::size_t jc) {
  for (std::size_t jr = 0; jr < nc_cur; jr += bp.nr) {
    const double* bstripe = packed_b + jr * kc_cur;
    const std::size_t cols = std::min(bp.nr, nc_cur - jr);
    for (std::size_t ir = 0; ir < mc_cur; ir += bp.mr) {
      const double* astripe = packed_a + ir * kc_cur;
      const std::size_t rows = std::min(bp.mr, mc_cur - ir);
      micro_kernel<4, 4>(astripe, bstripe, kc_cur, c, ic + ir, jc + jr,
                         rows, cols);
    }
  }
  // One C tile pass: read + write mc x nc, plus the 2*mc*nc*kc flops.
  trace::count_dram_read(mc_cur * nc_cur * sizeof(double));
  trace::count_dram_write(mc_cur * nc_cur * sizeof(double));
  trace::count_flops(2ull * mc_cur * nc_cur * kc_cur);
}

}  // namespace

void blocked_gemm(linalg::ConstMatrixView a, linalg::ConstMatrixView b,
                  linalg::MatrixView c, const BlockingParams& bp,
                  tasking::ThreadPool* pool) {
  check_gemm_shapes(a, b, c);
  if (bp.mr != 4 || bp.nr != 4) {
    throw std::invalid_argument(
        "blocked_gemm: this build provides a 4x4 microkernel");
  }
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = b.cols();
  CAPOW_TSPAN_ARGS2("gemm.blocked", "blas", "m", m, "n", n);

  c.zero();
  trace::count_dram_write(m * n * sizeof(double));

  AlignedScratch b_scratch;
  for (std::size_t jc = 0; jc < n; jc += bp.nc) {
    const std::size_t nc_cur = std::min(bp.nc, n - jc);
    for (std::size_t pc = 0; pc < k; pc += bp.kc) {
      const std::size_t kc_cur = std::min(bp.kc, k - pc);
      CAPOW_TSPAN_ARGS2("gemm.panel", "blas", "jc", jc, "pc", pc);
      const std::size_t padded_nc = ((nc_cur + bp.nr - 1) / bp.nr) * bp.nr;
      double* packed_b = b_scratch.get(padded_nc * kc_cur);
      pack_b(b, pc, jc, kc_cur, nc_cur, bp.nr, packed_b);

      const std::size_t mblocks = (m + bp.mc - 1) / bp.mc;
      auto body = [&](std::size_t blk_lo, std::size_t blk_hi) {
        AlignedScratch a_scratch;
        for (std::size_t blk = blk_lo; blk < blk_hi; ++blk) {
          const std::size_t ic = blk * bp.mc;
          const std::size_t mc_cur = std::min(bp.mc, m - ic);
          const std::size_t padded_mc =
              ((mc_cur + bp.mr - 1) / bp.mr) * bp.mr;
          double* packed_a = a_scratch.get(padded_mc * kc_cur);
          pack_a(a, ic, pc, mc_cur, kc_cur, bp.mr, packed_a);
          block_multiply(packed_a, packed_b, mc_cur, nc_cur, kc_cur, bp, c,
                         ic, jc);
        }
      };
      if (pool != nullptr && pool->concurrency() > 1 && mblocks > 1) {
        tasking::parallel_for(*pool, 0, mblocks, body);
        trace::count_sync();
      } else {
        body(0, mblocks);
      }
    }
  }
}

void blocked_gemm(linalg::ConstMatrixView a, linalg::ConstMatrixView b,
                  linalg::MatrixView c, const machine::MachineSpec& spec,
                  tasking::ThreadPool* pool) {
  blocked_gemm(a, b, c, select_blocking(spec), pool);
}

void blocked_gemm(linalg::ConstMatrixView a, linalg::ConstMatrixView b,
                  linalg::MatrixView c, tasking::ThreadPool* pool) {
  blocked_gemm(a, b, c, default_blocking(), pool);
}

}  // namespace capow::blas
