#include "capow/blas/cost_model.hpp"

#include <algorithm>
#include <cmath>

namespace capow::blas {

double gemm_flops(std::size_t m, std::size_t n, std::size_t k) {
  return 2.0 * static_cast<double>(m) * static_cast<double>(n) *
         static_cast<double>(k);
}

double blocked_gemm_traffic_bytes(std::size_t m, std::size_t n,
                                  std::size_t k, const BlockingParams& bp) {
  const double w = sizeof(double);
  double bytes = static_cast<double>(m) * static_cast<double>(n) * w;  // C zero-fill
  for (std::size_t jc = 0; jc < n; jc += bp.nc) {
    const std::size_t nc_cur = std::min(bp.nc, n - jc);
    for (std::size_t pc = 0; pc < k; pc += bp.kc) {
      const std::size_t kc_cur = std::min(bp.kc, k - pc);
      bytes += static_cast<double>(kc_cur * nc_cur) * w;  // pack B
      for (std::size_t ic = 0; ic < m; ic += bp.mc) {
        const std::size_t mc_cur = std::min(bp.mc, m - ic);
        bytes += static_cast<double>(mc_cur * kc_cur) * w;      // pack A
        bytes += 2.0 * static_cast<double>(mc_cur * nc_cur) * w;  // C r+w
      }
    }
  }
  return bytes;
}

std::uint64_t blocked_gemm_sync_count(std::size_t n, std::size_t k,
                                      const BlockingParams& bp) {
  const std::uint64_t jc_steps = (n + bp.nc - 1) / bp.nc;
  const std::uint64_t pc_steps = (k + bp.kc - 1) / bp.kc;
  return jc_steps * pc_steps;
}

sim::WorkProfile blocked_gemm_profile(std::size_t n,
                                      const machine::MachineSpec& spec,
                                      unsigned threads) {
  // Resolve the kernel exactly as blas::gemm would (CAPOW_KERNEL, else
  // fastest supported) so the analytic blocking matches execution.
  const BlockingParams bp = select_blocking(spec, select_kernel());
  const double w = sizeof(double);
  const double traffic = blocked_gemm_traffic_bytes(n, n, n, bp);
  const double footprint = 3.0 * static_cast<double>(n) * n * w;

  double dram_bytes;
  double cache_bytes;
  if (footprint <= static_cast<double>(spec.llc_capacity_bytes())) {
    // LLC-resident problem: only compulsory traffic (read A and B, the
    // zero-fill and final write of C) reaches DRAM.
    dram_bytes = 4.0 * static_cast<double>(n) * n * w;
    cache_bytes = std::max(traffic - dram_bytes, 0.0);
  } else {
    dram_bytes = traffic;
    cache_bytes = 0.0;
  }

  const std::size_t mblocks = (n + bp.mc - 1) / bp.mc;
  const unsigned p = std::min<unsigned>(
      {threads, spec.core_count, static_cast<unsigned>(mblocks)});
  // Static work sharing over mblocks row blocks: the critical path is the
  // worker with ceil(mblocks / p) blocks.
  const double imbalance =
      static_cast<double>((mblocks + p - 1) / p) * p /
      static_cast<double>(mblocks);

  const bool parallel = threads > 1 && mblocks > 1;
  const std::uint64_t syncs =
      parallel ? blocked_gemm_sync_count(n, n, bp) : 0;

  sim::WorkProfile wp;
  wp.name = "blocked-dgemm";
  wp.add(sim::PhaseCost{
      .label = "blocked-dgemm",
      .flops = gemm_flops(n, n, n),
      .dram_bytes = dram_bytes,
      .cache_bytes = cache_bytes,
      .parallelism = parallel ? p : 1,
      .efficiency = kTunedGemmEfficiency,
      .imbalance = std::max(imbalance, 1.0),
      .sync_events = syncs,
      .spawn_events = syncs * p,
  });
  return wp;
}

}  // namespace capow::blas
