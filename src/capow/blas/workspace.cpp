#include "capow/blas/workspace.hpp"

#include <algorithm>
#include <cstdlib>
#include <new>

namespace capow::blas {

namespace {

// Buffers are handed out in 4 KiB size classes so edge-block panels
// (slightly smaller than the interior ones) reuse the same pool entry.
constexpr std::size_t kClassBytes = 4096;

std::size_t round_up_doubles(std::size_t count) {
  const std::size_t per_class = kClassBytes / sizeof(double);
  const std::size_t classes = (count + per_class - 1) / per_class;
  return (classes == 0 ? 1 : classes) * per_class;
}

}  // namespace

WorkspaceCheckout& WorkspaceCheckout::operator=(
    WorkspaceCheckout&& other) noexcept {
  if (this != &other) {
    release();
    arena_ = std::exchange(other.arena_, nullptr);
    data_ = std::exchange(other.data_, nullptr);
    capacity_ = std::exchange(other.capacity_, 0);
  }
  return *this;
}

void WorkspaceCheckout::release() noexcept {
  if (arena_ != nullptr && data_ != nullptr) {
    arena_->release_buffer(data_, capacity_);
  }
  arena_ = nullptr;
  data_ = nullptr;
  capacity_ = 0;
}

WorkspaceArena::~WorkspaceArena() { trim(); }

WorkspaceCheckout WorkspaceArena::acquire(std::size_t count) {
  const std::size_t want = round_up_doubles(count);
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.acquires;

  // Best fit: smallest pooled buffer that still satisfies the request.
  std::size_t best = free_.size();
  for (std::size_t i = 0; i < free_.size(); ++i) {
    if (free_[i].capacity >= want &&
        (best == free_.size() || free_[i].capacity < free_[best].capacity)) {
      best = i;
    }
  }
  double* data = nullptr;
  std::size_t capacity = 0;
  if (best != free_.size()) {
    ++stats_.hits;
    data = free_[best].data;
    capacity = free_[best].capacity;
    stats_.pooled_bytes -= capacity * sizeof(double);
    free_[best] = free_.back();
    free_.pop_back();
  } else {
    ++stats_.misses;
    capacity = want;
    data = static_cast<double*>(std::aligned_alloc(
        linalg::kMatrixAlignment, capacity * sizeof(double)));
    if (data == nullptr) throw std::bad_alloc();
    stats_.allocated_bytes += capacity * sizeof(double);
  }
  stats_.outstanding_bytes += capacity * sizeof(double);
  stats_.peak_outstanding_bytes =
      std::max(stats_.peak_outstanding_bytes, stats_.outstanding_bytes);
  return WorkspaceCheckout(this, data, capacity);
}

void WorkspaceArena::release_buffer(double* data,
                                    std::size_t capacity) noexcept {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.outstanding_bytes -= capacity * sizeof(double);
  stats_.pooled_bytes += capacity * sizeof(double);
  try {
    free_.push_back({data, capacity});
  } catch (...) {
    // Could not pool it; drop the buffer rather than leak or throw.
    stats_.pooled_bytes -= capacity * sizeof(double);
    std::free(data);
  }
}

ArenaStats WorkspaceArena::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void WorkspaceArena::trim() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Pooled& p : free_) std::free(p.data);
  free_.clear();
  stats_.pooled_bytes = 0;
}

void WorkspaceArena::reset_stats() {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t pooled = stats_.pooled_bytes;
  const std::uint64_t allocated = stats_.allocated_bytes;
  const std::uint64_t outstanding = stats_.outstanding_bytes;
  stats_ = ArenaStats{};
  stats_.pooled_bytes = pooled;
  stats_.allocated_bytes = allocated;
  stats_.outstanding_bytes = outstanding;
  stats_.peak_outstanding_bytes = outstanding;
}

WorkspaceArena& WorkspaceArena::process_arena() {
  static WorkspaceArena* arena = new WorkspaceArena();
  return *arena;
}

namespace {
// Null means "not overridden" so threads spawned before process_arena()
// is first touched still resolve lazily to it.
thread_local WorkspaceArena* t_active_arena = nullptr;
}  // namespace

WorkspaceArena& active_arena() noexcept {
  return t_active_arena != nullptr ? *t_active_arena
                                   : WorkspaceArena::process_arena();
}

ArenaScope::ArenaScope(WorkspaceArena& arena) noexcept
    : prev_(t_active_arena) {
  t_active_arena = &arena;
}

ArenaScope::~ArenaScope() { t_active_arena = prev_; }

}  // namespace capow::blas
