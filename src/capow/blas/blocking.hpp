// Cache-aware blocking selection for the Goto-style blocked DGEMM.
//
// The paper (Section IV-A): "the OpenBLAS algorithm attempts to optimize
// a blocking matrix-matrix multiplication by determining what the best
// blocking factor is for the platform based upon cache hierarchy and
// respective capacity of each cache level." select_blocking() is that
// determination: it sizes the packed A block for L2, the packed B panel
// for the LLC, and the register tile for the microkernel.
#pragma once

#include <cstddef>

#include "capow/blas/microkernel.hpp"
#include "capow/machine/machine.hpp"

namespace capow::blas {

/// Goto-style blocking parameters: C is computed in mc x nc tiles from
/// packed A (mc x kc, L2-resident) and packed B (kc x nc, LLC-resident)
/// panels, with an mr x nr register microkernel.
struct BlockingParams {
  std::size_t mc;  ///< rows of the packed A block
  std::size_t kc;  ///< shared (inner) dimension block
  std::size_t nc;  ///< columns of the packed B panel
  std::size_t mr;  ///< microkernel rows
  std::size_t nr;  ///< microkernel columns
};

/// Chooses blocking for `spec`'s cache hierarchy:
///  - kc * mr * 8 and kc * nr * 8 stripes stay L1-friendly,
///  - mc * kc * 8 fills about half of L2 (leaving room for B stripes),
///  - kc * nc * 8 fills about half of the LLC.
/// All values are multiples of the microkernel tile and at least one
/// tile. Falls back to conservative defaults when the spec has no caches.
BlockingParams select_blocking(const machine::MachineSpec& spec);

/// Kernel-aware variant: the register tile (mr, nr) is taken from
/// `kernel`, and mc/kc/nc are sized around that tile. The single-arg
/// overload above keeps the seed's 4x4 tile for legacy callers.
BlockingParams select_blocking(const machine::MachineSpec& spec,
                               const MicroKernel& kernel);

/// Default blocking used when no machine is supplied (sized for the
/// Haswell preset).
BlockingParams default_blocking();

/// Default blocking matched to `kernel`'s register tile: the same
/// Haswell-preset mc/kc/nc footprint with mc rounded to a multiple of
/// the kernel's mr and nc to a multiple of its nr.
BlockingParams default_blocking_for(const MicroKernel& kernel);

}  // namespace capow::blas
