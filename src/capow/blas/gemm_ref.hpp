// Reference (naive) GEMM — ground truth for every other multiplier.
#pragma once

#include "capow/linalg/matrix.hpp"

namespace capow::blas {

/// C = A * B using the ijk triple loop. O(n^3), no blocking, no
/// instrumentation; exists purely as the correctness oracle.
/// Throws std::invalid_argument on shape mismatch.
void gemm_reference(linalg::ConstMatrixView a, linalg::ConstMatrixView b,
                    linalg::MatrixView c);

/// C += A * B, reference version.
void gemm_reference_accumulate(linalg::ConstMatrixView a,
                               linalg::ConstMatrixView b,
                               linalg::MatrixView c);

/// Validates shapes for C = A(m x k) * B(k x n); throws on mismatch.
void check_gemm_shapes(linalg::ConstMatrixView a, linalg::ConstMatrixView b,
                       linalg::ConstMatrixView c);

}  // namespace capow::blas
