// Goto-style packed, blocked DGEMM — the paper's "OpenBLAS tuned"
// baseline (Algorithm 1).
//
// Structure: C is swept in nc-wide column panels; for each kc-deep slice
// the B panel is packed once (LLC-resident), then mc x kc blocks of A are
// packed (L2-resident) and a runtime-dispatched mr x nr register
// microkernel (microkernel.hpp) accumulates into C tiles. Packed panels
// come from a WorkspaceArena, so steady-state calls never malloc.
// Parallelism is work-sharing over the mc row blocks, the same loop
// OpenBLAS threads via OpenMP on the paper's platform.
//
// Every pack and C-tile update records its logical streaming traffic via
// capow::trace so that instrumented runs can be checked against the
// closed-form cost model (cost_model.hpp) byte-for-byte. The traffic
// model depends only on mc/kc/nc — never on the register tile — so every
// kernel variant satisfies the same cross-check.
#pragma once

#include <cstdint>
#include <optional>

#include "capow/blas/blocking.hpp"
#include "capow/blas/microkernel.hpp"
#include "capow/blas/workspace.hpp"
#include "capow/linalg/matrix.hpp"
#include "capow/tasking/thread_pool.hpp"

namespace capow::blas {

/// Options for blas::gemm. Kernel/blocking resolution:
///  - explicit `blocking` pins the register tile: the kernel is the
///    registry entry whose tile matches (mr, nr) exactly, and both
///    `kernel` (if also set) and the tile must agree — this keeps runs
///    with pinned BlockingParams deterministic under CAPOW_KERNEL.
///  - otherwise the kernel is select_kernel(kernel) — explicit request,
///    else CAPOW_KERNEL, else fastest supported — and blocking is
///    select_blocking(machine, kernel) or default_blocking_for(kernel).
struct GemmOptions {
  std::optional<BlockingParams> blocking;
  std::optional<MicroKernelId> kernel;
  std::optional<machine::MachineSpec> machine;
  /// Packing-buffer pool; null leases from blas::active_arena() (the
  /// thread's ambient arena — the dispatched backend's device pool, or
  /// the process arena outside any backend scope).
  WorkspaceArena* arena = nullptr;
  /// Null runs serially.
  tasking::ThreadPool* pool = nullptr;
  /// Namespaces the deterministic mem.flip/compute.flip fault draws of
  /// this call. Recovery layers (abft) re-run damaged panels with a
  /// fresh salt so the retry re-draws its faults instead of re-firing
  /// the identical flip; plain callers leave it at 0.
  std::uint64_t fault_salt = 0;
};

/// C = A * B through the packed, blocked path. Shapes are validated.
void gemm(linalg::ConstMatrixView a, linalg::ConstMatrixView b,
          linalg::MatrixView c, const GemmOptions& opts = {});

/// The kernel gemm() would run for `opts` (after full resolution);
/// throws exactly when gemm() would. Exposed so harness/telemetry can
/// record the variant without re-implementing the resolution rules.
const MicroKernel& resolve_kernel(const GemmOptions& opts);

/// The blocking parameters gemm() would use for `opts` after kernel
/// resolution. Exposed so recovery layers (abft) can pin them when
/// recomputing a damaged panel through a sub-view: the same blocking on
/// the same operand values replays the identical floating-point
/// schedule, making localized recomputation bit-identical to the
/// original sweep.
BlockingParams resolve_blocking(const GemmOptions& opts);

/// C = A * B (or C += A * B) for small unpacked blocks through the
/// registry microkernel: the packed-stripe path of gemm() without the
/// cache-blocking loop nest, packing both operands into one arena
/// buffer. Traffic accounting is identical to strassen::base_gemm
/// (2*m*n*k flops, (m*k + k*n) bytes read, m*n written) so it can stand
/// in for the recursion base case without moving the cost-model
/// cross-checks.
void small_gemm(linalg::ConstMatrixView a, linalg::ConstMatrixView b,
                linalg::MatrixView c, const MicroKernel& kernel,
                WorkspaceArena& arena, bool accumulate = false);

}  // namespace capow::blas
