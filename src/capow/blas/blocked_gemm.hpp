// Goto-style packed, blocked DGEMM — the paper's "OpenBLAS tuned"
// baseline (Algorithm 1).
//
// Structure: C is swept in nc-wide column panels; for each kc-deep slice
// the B panel is packed once (LLC-resident), then mc x kc blocks of A are
// packed (L2-resident) and an mr x nr register microkernel accumulates
// into C tiles. Parallelism is work-sharing over the mc row blocks, the
// same loop OpenBLAS threads via OpenMP on the paper's platform.
//
// Every pack and C-tile update records its logical streaming traffic via
// capow::trace so that instrumented runs can be checked against the
// closed-form cost model (cost_model.hpp) byte-for-byte.
#pragma once

#include "capow/blas/blocking.hpp"
#include "capow/linalg/matrix.hpp"
#include "capow/tasking/thread_pool.hpp"

namespace capow::blas {

/// C = A * B with explicit blocking parameters.
/// `pool` may be null (serial execution). Shapes are validated.
void blocked_gemm(linalg::ConstMatrixView a, linalg::ConstMatrixView b,
                  linalg::MatrixView c, const BlockingParams& bp,
                  tasking::ThreadPool* pool = nullptr);

/// C = A * B with blocking chosen for `spec` via select_blocking().
void blocked_gemm(linalg::ConstMatrixView a, linalg::ConstMatrixView b,
                  linalg::MatrixView c, const machine::MachineSpec& spec,
                  tasking::ThreadPool* pool = nullptr);

/// C = A * B with default blocking.
void blocked_gemm(linalg::ConstMatrixView a, linalg::ConstMatrixView b,
                  linalg::MatrixView c,
                  tasking::ThreadPool* pool = nullptr);

}  // namespace capow::blas
