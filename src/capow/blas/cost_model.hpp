// Closed-form cost model for the blocked DGEMM.
//
// Mirrors blocked_gemm.cpp's loop structure *exactly*, so tests can
// assert (instrumented bytes == analytic bytes) with zero tolerance, and
// the benches can evaluate 4096^3-scale configurations without running
// hours of scalar arithmetic.
#pragma once

#include <cstddef>

#include "capow/blas/blocking.hpp"
#include "capow/machine/machine.hpp"
#include "capow/sim/cost_profile.hpp"

namespace capow::blas {

/// Fraction of per-core peak the tuned GEMM kernel attains. The paper's
/// OpenBLAS is built with TARGET=SANDYBRIDGE (Table I) and therefore
/// issues AVX multiply+add, not Haswell FMA: at most 8 of the 16
/// flops/cycle the machine model credits as peak, degraded further by
/// edge cases and pack overhead — hence 0.42. This value reproduces the
/// paper's absolute OpenBLAS runtimes to within ~15%.
inline constexpr double kTunedGemmEfficiency = 0.42;

/// Total flops of an m x n x k multiply-accumulate sweep (2mnk).
double gemm_flops(std::size_t m, std::size_t n, std::size_t k);

/// Logical streaming traffic of blas::gemm() in bytes — the same
/// quantity the instrumentation counts: the initial C zero-fill, every
/// A/B pack read, and every C tile read+write.
double blocked_gemm_traffic_bytes(std::size_t m, std::size_t n,
                                  std::size_t k, const BlockingParams& bp);

/// Number of parallel_for joins blas::gemm() performs with >1 worker.
std::uint64_t blocked_gemm_sync_count(std::size_t n, std::size_t k,
                                      const BlockingParams& bp);

/// Builds the simulator work profile for an n x n x n blocked DGEMM on
/// `spec` with `threads` workers (blocking chosen via select_blocking).
/// When all three operands fit in the LLC only compulsory traffic hits
/// DRAM; otherwise the full streaming traffic does.
sim::WorkProfile blocked_gemm_profile(std::size_t n,
                                      const machine::MachineSpec& spec,
                                      unsigned threads);

}  // namespace capow::blas
