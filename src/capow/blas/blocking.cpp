#include "capow/blas/blocking.hpp"

#include <algorithm>

namespace capow::blas {

namespace {

std::size_t round_down_multiple(std::size_t v, std::size_t m) {
  return std::max<std::size_t>(v / m, 1) * m;
}

}  // namespace

BlockingParams select_blocking(const machine::MachineSpec& spec) {
  // Legacy entry: the seed's 4x4 scalar tile.
  return select_blocking(spec, *find_kernel(MicroKernelId::kGeneric));
}

BlockingParams select_blocking(const machine::MachineSpec& spec,
                               const MicroKernel& kernel) {
  BlockingParams p{};
  p.mr = kernel.mr;
  p.nr = kernel.nr;

  const std::size_t l1 = spec.cache_capacity_bytes(0);
  const std::size_t l2 = spec.cache_capacity_bytes(1);
  const std::size_t llc = spec.llc_capacity_bytes();
  if (l1 == 0 || l2 == 0 || llc == 0) return default_blocking_for(kernel);

  // kc: an mr x kc A-stripe plus a kc x nr B-stripe should fit in half
  // of L1 alongside the C tile.
  const std::size_t kc_budget = l1 / 2 / (8 * (p.mr + p.nr));
  p.kc = std::clamp<std::size_t>(round_down_multiple(kc_budget, 8), 64, 512);

  // mc: packed A (mc x kc) in half of L2.
  const std::size_t mc_budget = l2 / 2 / (8 * p.kc);
  p.mc = std::clamp<std::size_t>(round_down_multiple(mc_budget, p.mr),
                                 p.mr, 512);

  // nc: packed B (kc x nc) in half of the LLC.
  const std::size_t nc_budget = llc / 2 / (8 * p.kc);
  p.nc = std::clamp<std::size_t>(round_down_multiple(nc_budget, p.nr),
                                 p.nr, 8192);
  return p;
}

BlockingParams default_blocking() {
  return BlockingParams{.mc = 128, .kc = 256, .nc = 2048, .mr = 4, .nr = 4};
}

BlockingParams default_blocking_for(const MicroKernel& kernel) {
  BlockingParams p = default_blocking();
  p.mr = kernel.mr;
  p.nr = kernel.nr;
  p.mc = round_down_multiple(p.mc, p.mr);
  p.nc = round_down_multiple(p.nc, p.nr);
  return p;
}

}  // namespace capow::blas
