#include "capow/blas/gemm_ref.hpp"

#include <stdexcept>
#include <string>

namespace capow::blas {

void check_gemm_shapes(linalg::ConstMatrixView a, linalg::ConstMatrixView b,
                       linalg::ConstMatrixView c) {
  if (a.cols() != b.rows() || c.rows() != a.rows() || c.cols() != b.cols()) {
    throw std::invalid_argument(
        "gemm: incompatible shapes A=" + std::to_string(a.rows()) + "x" +
        std::to_string(a.cols()) + " B=" + std::to_string(b.rows()) + "x" +
        std::to_string(b.cols()) + " C=" + std::to_string(c.rows()) + "x" +
        std::to_string(c.cols()));
  }
}

namespace {

void gemm_ref_impl(linalg::ConstMatrixView a, linalg::ConstMatrixView b,
                   linalg::MatrixView c, bool accumulate) {
  check_gemm_shapes(a, b, c);
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = b.cols();
  for (std::size_t i = 0; i < m; ++i) {
    double* ci = c.row(i);
    if (!accumulate) {
      for (std::size_t j = 0; j < n; ++j) ci[j] = 0.0;
    }
    const double* ai = a.row(i);
    for (std::size_t p = 0; p < k; ++p) {
      const double aip = ai[p];
      const double* bp = b.row(p);
      for (std::size_t j = 0; j < n; ++j) ci[j] += aip * bp[j];
    }
  }
}

}  // namespace

void gemm_reference(linalg::ConstMatrixView a, linalg::ConstMatrixView b,
                    linalg::MatrixView c) {
  gemm_ref_impl(a, b, c, /*accumulate=*/false);
}

void gemm_reference_accumulate(linalg::ConstMatrixView a,
                               linalg::ConstMatrixView b,
                               linalg::MatrixView c) {
  gemm_ref_impl(a, b, c, /*accumulate=*/true);
}

}  // namespace capow::blas
