// Runtime-dispatched register microkernels for the packed GEMM family.
//
// The paper's "OpenBLAS tuned" baseline (Algorithm 1) is only meaningful
// if the local multiply runs as fast as the hardware allows. This module
// provides the mr x nr register kernels that blas::gemm (and, when
// requested, the Strassen/CAPS dense base case) executes over packed
// operand stripes:
//
//   * generic — portable scalar 4x4 tile, compiled for the baseline ISA,
//   * avx2    — 4x8 tile of 256-bit mul+add vectors,
//   * fma     — 6x8 tile of fused multiply-adds (the BLIS-style Haswell
//               shape: 12 independent accumulator vectors).
//
// Every kernel ships with matching pack routines that lay A out in
// mr-high row stripes and B in nr-wide column stripes, zero-padded so
// the kernel never branches on a partial tile. All SIMD variants are
// compiled with per-function target attributes and gated behind runtime
// CPU detection, so one binary carries every kernel and selects at run
// time — `CAPOW_KERNEL={generic,avx2,fma,auto}` pins the choice for A/B
// experiments.
//
// Kernels are *pure*: they move no logical-traffic counters. The callers
// (blocked_gemm, small_gemm) account packing and tile traffic exactly as
// the closed-form cost models do, which keeps the instrumented-vs-model
// cross-checks byte-exact regardless of the kernel variant.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string_view>

#include "capow/linalg/matrix.hpp"

namespace capow::blas {

/// Identity of one registered microkernel variant.
enum class MicroKernelId : int { kGeneric = 0, kAvx2 = 1, kFma = 2 };

/// Computes one full MR x NR tile over packed stripes:
///   C[r*ldc + j] += sum_p astripe[p*MR + r] * bstripe[p*NR + j].
using MicroKernelFn = void (*)(const double* astripe, const double* bstripe,
                               std::size_t kc, double* c, std::size_t ldc);

/// Packs the mc x kc block of `a` anchored at (ic, pc) into mr-high row
/// stripes (stripe-major, then k-index, then row-in-stripe), zero-padding
/// edge rows to the kernel's mr.
using PackAFn = void (*)(linalg::ConstMatrixView a, std::size_t ic,
                         std::size_t pc, std::size_t mc, std::size_t kc,
                         double* buf);

/// Packs the kc x nc panel of `b` anchored at (pc, jc) into nr-wide
/// column stripes, zero-padding edge columns to the kernel's nr.
using PackBFn = void (*)(linalg::ConstMatrixView b, std::size_t pc,
                         std::size_t jc, std::size_t kc, std::size_t nc,
                         double* buf);

/// One registered microkernel variant plus its pack routines.
struct MicroKernel {
  MicroKernelId id{};
  const char* name = "";  ///< registry key; also the CAPOW_KERNEL value
  std::size_t mr = 0;     ///< register-tile rows
  std::size_t nr = 0;     ///< register-tile columns
  MicroKernelFn kernel = nullptr;
  PackAFn pack_a = nullptr;
  PackBFn pack_b = nullptr;
  bool (*supported)() = nullptr;  ///< runtime CPU capability check
};

/// Largest tile any registered kernel uses (sizes edge-tile scratch).
inline constexpr std::size_t kMaxMicroTileRows = 8;
inline constexpr std::size_t kMaxMicroTileCols = 8;

/// All registered kernels, in ascending-preference order (the last
/// supported entry is the "auto" choice).
std::span<const MicroKernel> kernel_registry() noexcept;

/// Lookup by id; never null for a valid id.
const MicroKernel* find_kernel(MicroKernelId id) noexcept;

/// Lookup by registry name ("generic", "avx2", "fma"); null when unknown.
const MicroKernel* find_kernel(std::string_view name) noexcept;

/// Registered kernel whose register tile is exactly mr x nr; null when
/// none matches. Tiles are unique per kernel, so legacy BlockingParams
/// (whose mr/nr predate the registry) resolve to exactly one variant.
const MicroKernel* find_kernel_for_tile(std::size_t mr,
                                        std::size_t nr) noexcept;

/// The CAPOW_KERNEL environment override, parsed once per process:
/// nullopt when unset or "auto"; throws std::invalid_argument the first
/// time for an unknown value.
std::optional<MicroKernelId> env_kernel_override();

/// Resolves the kernel to run:
///   1. `requested` when provided,
///   2. else the CAPOW_KERNEL environment override,
///   3. else the fastest variant this CPU supports.
/// Throws std::runtime_error when the resolved variant is not supported
/// by the executing CPU (an explicit request for an unavailable ISA is
/// an experiment-setup error, not something to paper over silently).
const MicroKernel& select_kernel(
    std::optional<MicroKernelId> requested = std::nullopt);

/// Runs one (possibly partial) tile: full tiles go straight to the
/// kernel; edge tiles accumulate into a zeroed scratch tile first and
/// add back only the live rows x cols window of C.
void run_micro_tile(const MicroKernel& k, const double* astripe,
                    const double* bstripe, std::size_t kc,
                    linalg::MatrixView c, std::size_t i0, std::size_t j0,
                    std::size_t rows, std::size_t cols);

}  // namespace capow::blas
