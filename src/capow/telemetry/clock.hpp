// Monotonic timestamp source for the span tracer.
//
// All telemetry timestamps are nanoseconds on std::chrono::steady_clock:
// comparable across threads of one process, immune to wall-clock steps,
// and cheap enough (~20 ns on Linux vDSO) to take twice per span.
#pragma once

#include <chrono>
#include <cstdint>

namespace capow::telemetry {

/// Nanoseconds since an arbitrary (per-boot) epoch, monotone.
inline std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace capow::telemetry
