#include "capow/telemetry/power_sampler.hpp"

#include <algorithm>
#include <climits>
#include <cstdlib>
#include <stdexcept>

#include "capow/core/env.hpp"
#include "capow/rapl/papi.hpp"
#include "capow/telemetry/clock.hpp"
#include "capow/telemetry/tracer.hpp"

namespace capow::telemetry {

std::chrono::microseconds PowerSampler::resolve_period(
    std::chrono::microseconds requested) noexcept {
  long long us = requested.count();
  if (requested == kDefaultPeriod) {
    // Lenient by contract (this resolver is noexcept and default-only):
    // a malformed value is ignored, an out-of-range one is clamped
    // below — but the token grammar itself is the shared strict one, so
    // "2000" and "2000 " parse identically here and in the throwing
    // CAPOW_SERVE_* knobs.
    if (const auto v = core::env_integer_lenient("CAPOW_POWER_PERIOD_US", 1,
                                                 LLONG_MAX)) {
      us = *v;
    }
  }
  return std::chrono::microseconds(
      std::clamp<long long>(us, kMinPeriod.count(), kMaxPeriod.count()));
}

PowerSampler::PowerSampler(const rapl::SimulatedMsrDevice& dev,
                           Options opts)
    : dev_(&dev), opts_(opts), period_(resolve_period(opts.interval)) {}

PowerSampler::~PowerSampler() { stop(); }

void PowerSampler::start() {
  if (running_.load(std::memory_order_acquire)) {
    throw std::logic_error("PowerSampler::start: already running");
  }
  {
    std::lock_guard lock(mutex_);
    samples_.clear();
    gap_count_ = 0;
    gap_min_s_ = 0.0;
    gap_max_s_ = 0.0;
    gap_sum_s_ = 0.0;
  }
  stop_requested_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { loop(); });
}

void PowerSampler::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stop_requested_.store(true, std::memory_order_release);
  thread_.join();
  running_.store(false, std::memory_order_release);
}

std::vector<PowerSampler::Sample> PowerSampler::samples() const {
  std::lock_guard lock(mutex_);
  return samples_;
}

PowerSampler::JitterStats PowerSampler::jitter() const {
  std::lock_guard lock(mutex_);
  JitterStats st;
  st.intervals = gap_count_;
  if (gap_count_ > 0) {
    st.min_seconds = gap_min_s_;
    st.max_seconds = gap_max_s_;
    st.mean_seconds = gap_sum_s_ / static_cast<double>(gap_count_);
  }
  return st;
}

void PowerSampler::loop() {
  // The monitor owns its EventSet — the exact client loop the paper's
  // PAPI-based driver runs (latch baselines, then poll live values).
  rapl::EventSet events(*dev_);
  events.add_event(rapl::kEventPackageEnergy);
  events.add_event(rapl::kEventPp0Energy);
  events.start();

  const std::uint64_t t0 = now_ns();
  std::uint64_t last_ns = t0;
  long long last_pkg_nj = 0;
  long long last_pp0_nj = 0;

  while (!stop_requested_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(period_);
    const std::uint64_t t = now_ns();
    const auto nj = events.read();
    const double dt = static_cast<double>(t - last_ns) * 1e-9;
    if (dt <= 0.0) continue;
    Sample s;
    s.t_seconds = static_cast<double>(t - t0) * 1e-9;
    s.package_w =
        static_cast<double>(nj[0] - last_pkg_nj) * 1e-9 / dt;
    s.pp0_w = static_cast<double>(nj[1] - last_pp0_nj) * 1e-9 / dt;
    last_ns = t;
    last_pkg_nj = nj[0];
    last_pp0_nj = nj[1];
    {
      std::lock_guard lock(mutex_);
      samples_.push_back(s);
      // Observed scheduling jitter: the real inter-sample gap vs the
      // requested period, the basis of the profiler's error bars.
      gap_min_s_ = gap_count_ == 0 ? dt : std::min(gap_min_s_, dt);
      gap_max_s_ = std::max(gap_max_s_, dt);
      gap_sum_s_ += dt;
      gap_count_ += 1;
    }
    // Time-aligned with any active span-tracing session.
    counter(opts_.package_counter, s.package_w);
    counter(opts_.pp0_counter, s.pp0_w);
  }
  events.stop();
}

}  // namespace capow::telemetry
