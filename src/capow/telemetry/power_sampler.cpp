#include "capow/telemetry/power_sampler.hpp"

#include <stdexcept>

#include "capow/rapl/papi.hpp"
#include "capow/telemetry/clock.hpp"
#include "capow/telemetry/tracer.hpp"

namespace capow::telemetry {

PowerSampler::PowerSampler(const rapl::SimulatedMsrDevice& dev,
                           Options opts)
    : dev_(&dev), opts_(opts) {}

PowerSampler::~PowerSampler() { stop(); }

void PowerSampler::start() {
  if (running_.load(std::memory_order_acquire)) {
    throw std::logic_error("PowerSampler::start: already running");
  }
  {
    std::lock_guard lock(mutex_);
    samples_.clear();
  }
  stop_requested_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { loop(); });
}

void PowerSampler::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stop_requested_.store(true, std::memory_order_release);
  thread_.join();
  running_.store(false, std::memory_order_release);
}

std::vector<PowerSampler::Sample> PowerSampler::samples() const {
  std::lock_guard lock(mutex_);
  return samples_;
}

void PowerSampler::loop() {
  // The monitor owns its EventSet — the exact client loop the paper's
  // PAPI-based driver runs (latch baselines, then poll live values).
  rapl::EventSet events(*dev_);
  events.add_event(rapl::kEventPackageEnergy);
  events.add_event(rapl::kEventPp0Energy);
  events.start();

  const std::uint64_t t0 = now_ns();
  std::uint64_t last_ns = t0;
  long long last_pkg_nj = 0;
  long long last_pp0_nj = 0;

  while (!stop_requested_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(opts_.interval);
    const std::uint64_t t = now_ns();
    const auto nj = events.read();
    const double dt = static_cast<double>(t - last_ns) * 1e-9;
    if (dt <= 0.0) continue;
    Sample s;
    s.t_seconds = static_cast<double>(t - t0) * 1e-9;
    s.package_w =
        static_cast<double>(nj[0] - last_pkg_nj) * 1e-9 / dt;
    s.pp0_w = static_cast<double>(nj[1] - last_pp0_nj) * 1e-9 / dt;
    last_ns = t;
    last_pkg_nj = nj[0];
    last_pp0_nj = nj[1];
    {
      std::lock_guard lock(mutex_);
      samples_.push_back(s);
    }
    // Time-aligned with any active span-tracing session.
    counter(opts_.package_counter, s.package_w);
    counter(opts_.pp0_counter, s.pp0_w);
  }
  events.stop();
}

}  // namespace capow::telemetry
