#include "capow/telemetry/export.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace capow::telemetry {

namespace {

// JSON number: fixed-point with enough precision for nanosecond-derived
// microsecond stamps; strips a bare trailing dot, never emits inf/nan.
std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

std::string json_ts(double us) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", us);
  return buf;
}

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string& JsonObject::key(std::string_view k) {
  if (!body_.empty()) body_ += ',';
  body_ += '"';
  body_ += json_escape(k);
  body_ += "\":";
  return body_;
}

JsonObject& JsonObject::field(std::string_view k, std::string_view value) {
  key(k) += '"' + json_escape(value) + '"';
  return *this;
}
JsonObject& JsonObject::field(std::string_view k, const char* value) {
  return field(k, std::string_view(value));
}
JsonObject& JsonObject::field(std::string_view k, double value) {
  key(k) += json_number(value);
  return *this;
}
JsonObject& JsonObject::field(std::string_view k, std::int64_t value) {
  key(k) += std::to_string(value);
  return *this;
}
JsonObject& JsonObject::field(std::string_view k, std::uint64_t value) {
  key(k) += std::to_string(value);
  return *this;
}
JsonObject& JsonObject::field(std::string_view k, bool value) {
  key(k) += value ? "true" : "false";
  return *this;
}
JsonObject& JsonObject::raw(std::string_view k, std::string_view json) {
  key(k).append(json);
  return *this;
}

std::string JsonObject::str() const { return "{" + body_ + "}"; }

void ChromeTraceWriter::set_process_name(int pid, std::string name) {
  JsonObject o;
  o.field("ph", "M")
      .field("name", "process_name")
      .field("pid", static_cast<std::int64_t>(pid))
      .field("tid", static_cast<std::int64_t>(0))
      .raw("args", JsonObject{}.field("name", name).str());
  events_.push_back(o.str());
}

void ChromeTraceWriter::set_thread_name(int pid, int tid, std::string name) {
  JsonObject o;
  o.field("ph", "M")
      .field("name", "thread_name")
      .field("pid", static_cast<std::int64_t>(pid))
      .field("tid", static_cast<std::int64_t>(tid))
      .raw("args", JsonObject{}.field("name", name).str());
  events_.push_back(o.str());
}

void ChromeTraceWriter::add_complete(int pid, int tid, std::string name,
                                     std::string cat, double ts_us,
                                     double dur_us, Args args) {
  JsonObject o;
  o.field("ph", "X")
      .field("name", name)
      .field("cat", cat)
      .field("pid", static_cast<std::int64_t>(pid))
      .field("tid", static_cast<std::int64_t>(tid))
      .raw("ts", json_ts(ts_us))
      .raw("dur", json_ts(dur_us < 0.0 ? 0.0 : dur_us));
  if (!args.empty()) {
    JsonObject a;
    for (const auto& [k, v] : args) a.field(k, v);
    o.raw("args", a.str());
  }
  events_.push_back(o.str());
}

void ChromeTraceWriter::add_instant(int pid, int tid, std::string name,
                                    std::string cat, double ts_us) {
  JsonObject o;
  o.field("ph", "i")
      .field("name", name)
      .field("cat", cat)
      .field("pid", static_cast<std::int64_t>(pid))
      .field("tid", static_cast<std::int64_t>(tid))
      .raw("ts", json_ts(ts_us))
      .field("s", "t");  // thread-scoped instant
  events_.push_back(o.str());
}

namespace {

std::string flow_event(const char* ph, int pid, int tid,
                       const std::string& name, const std::string& cat,
                       double ts_us, std::uint64_t id) {
  JsonObject o;
  o.field("ph", ph)
      .field("name", name)
      .field("cat", cat)
      .field("pid", static_cast<std::int64_t>(pid))
      .field("tid", static_cast<std::int64_t>(tid))
      .raw("ts", json_ts(ts_us))
      .field("id", static_cast<std::uint64_t>(id));
  if (ph[0] == 'f') o.field("bp", "e");
  return o.str();
}

}  // namespace

void ChromeTraceWriter::add_flow_start(int pid, int tid, std::string name,
                                       std::string cat, double ts_us,
                                       std::uint64_t id) {
  events_.push_back(flow_event("s", pid, tid, name, cat, ts_us, id));
}

void ChromeTraceWriter::add_flow_finish(int pid, int tid, std::string name,
                                        std::string cat, double ts_us,
                                        std::uint64_t id) {
  events_.push_back(flow_event("f", pid, tid, name, cat, ts_us, id));
}

void ChromeTraceWriter::add_counter(int pid, std::string name, double ts_us,
                                    Args series) {
  JsonObject o;
  o.field("ph", "C")
      .field("name", name)
      .field("pid", static_cast<std::int64_t>(pid))
      .field("tid", static_cast<std::int64_t>(0))
      .raw("ts", json_ts(ts_us));
  JsonObject a;
  for (const auto& [k, v] : series) a.field(k, v);
  o.raw("args", a.str());
  events_.push_back(o.str());
}

void ChromeTraceWriter::add_events(const std::vector<TraceEvent>& events,
                                   int pid, std::uint64_t base_ns) {
  for (const TraceEvent& e : events) {
    const double ts_us =
        e.rec.t_begin_ns >= base_ns
            ? static_cast<double>(e.rec.t_begin_ns - base_ns) / 1e3
            : 0.0;
    const int tid = static_cast<int>(e.tid);
    const std::string name = e.rec.name != nullptr ? e.rec.name : "?";
    const std::string cat =
        e.rec.category != nullptr ? e.rec.category : "";
    switch (e.rec.kind) {
      case EventKind::kSpan: {
        Args args;
        for (int i = 0; i < EventRecord::kMaxArgs; ++i) {
          if (e.rec.arg_name[i] != nullptr) {
            args.emplace_back(e.rec.arg_name[i],
                              static_cast<double>(e.rec.arg[i]));
          }
        }
        const double dur_us =
            static_cast<double>(e.rec.t_end_ns - e.rec.t_begin_ns) / 1e3;
        add_complete(pid, tid, name, cat, ts_us, dur_us, std::move(args));
        break;
      }
      case EventKind::kInstant:
        add_instant(pid, tid, name, cat, ts_us);
        break;
      case EventKind::kCounter:
        add_counter(pid, name, ts_us, Args{{"value", e.rec.value}});
        break;
    }
  }
}

void ChromeTraceWriter::write(std::ostream& os) const {
  os << "{\"traceEvents\":[";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    if (i > 0) os << ",";
    os << "\n" << events_[i];
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

std::string ChromeTraceWriter::str() const {
  std::ostringstream os;
  write(os);
  return os.str();
}

MetricsRegistry& MetricsRegistry::family(std::string name, std::string help,
                                         std::string type) {
  for (std::size_t i = 0; i < families_.size(); ++i) {
    if (families_[i].name == name) {
      // Re-opening moves the "current family" cursor to the end.
      Family f = std::move(families_[i]);
      families_.erase(families_.begin() + static_cast<std::ptrdiff_t>(i));
      families_.push_back(std::move(f));
      return *this;
    }
  }
  families_.push_back(
      Family{std::move(name), std::move(help), std::move(type), {}});
  return *this;
}

std::string MetricsRegistry::label_key(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += labels[i].first + "=\"" + json_escape(labels[i].second) + "\"";
  }
  out += "}";
  return out;
}

MetricsRegistry& MetricsRegistry::sample(const Labels& labels,
                                         double value) {
  if (families_.empty()) family("capow_unnamed", "");
  Family& f = families_.back();
  const std::string k = label_key(labels);
  for (auto& [key, v] : f.samples) {
    if (key == k) {
      v = value;
      return *this;
    }
  }
  f.samples.emplace_back(k, value);
  return *this;
}

MetricsRegistry& MetricsRegistry::set(std::string name, std::string help,
                                      const Labels& labels, double value,
                                      std::string type) {
  family(std::move(name), std::move(help), std::move(type));
  return sample(labels, value);
}

std::string MetricsRegistry::to_text() const {
  std::ostringstream os;
  write(os);
  return os.str();
}

void MetricsRegistry::write(std::ostream& os) const {
  for (const Family& f : families_) {
    if (!f.help.empty()) os << "# HELP " << f.name << " " << f.help << "\n";
    os << "# TYPE " << f.name << " " << f.type << "\n";
    for (const auto& [labels, value] : f.samples) {
      os << f.name << labels << " " << json_number(value) << "\n";
    }
  }
}

}  // namespace capow::telemetry
