#include "capow/telemetry/tracer.hpp"

#include <algorithm>
#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <mutex>

namespace capow::telemetry {

namespace {

// Process-global state, allocated once and intentionally never freed:
// worker threads may race a session teardown by a few instructions, and
// a stray push into a still-live ring is harmless where a push into a
// freed one would not be. Memory is bounded by thread count and the
// interned-name set.
struct Registry {
  std::mutex mutex;
  std::vector<std::unique_ptr<detail::ThreadBuffer>> buffers;
  std::deque<std::string> interned_storage;
  std::map<std::string, const char*, std::less<>> interned_index;
  std::size_t next_ring_capacity = 8192;
};

Registry& registry() {
  static Registry* r = new Registry;
  return *r;
}

std::atomic<Tracer*> g_tracer{nullptr};

thread_local detail::ThreadBuffer* t_buffer = nullptr;

thread_local std::int32_t t_rank = -1;

}  // namespace

void set_thread_rank(std::int32_t rank) noexcept { t_rank = rank; }

std::int32_t thread_rank() noexcept { return t_rank; }

namespace detail {

ThreadBuffer* this_thread_buffer() {
  if (t_buffer == nullptr) {
    Registry& reg = registry();
    std::lock_guard lock(reg.mutex);
    reg.buffers.push_back(std::make_unique<ThreadBuffer>(
        reg.next_ring_capacity, reg.buffers.size()));
    t_buffer = reg.buffers.back().get();
  }
  return t_buffer;
}

}  // namespace detail

const char* intern(std::string_view s) {
  Registry& reg = registry();
  std::lock_guard lock(reg.mutex);
  const auto it = reg.interned_index.find(s);
  if (it != reg.interned_index.end()) return it->second;
  reg.interned_storage.emplace_back(s);
  const char* stable = reg.interned_storage.back().c_str();
  reg.interned_index.emplace(std::string(s), stable);
  return stable;
}

Tracer::Tracer(Options opts) : opts_(opts), start_ns_(now_ns()) {
  Registry& reg = registry();
  std::lock_guard lock(reg.mutex);
  reg.next_ring_capacity = opts_.ring_capacity;
  std::uint64_t drops = 0;
  for (const auto& b : reg.buffers) drops += b->ring.dropped();
  dropped_baseline_ = drops;
}

Tracer::~Tracer() {
  // Defensive: if someone destroys an installed tracer without ending
  // its TracingScope first, uninstall so call sites stop referencing it.
  Tracer* self = this;
  g_tracer.compare_exchange_strong(self, nullptr,
                                   std::memory_order_acq_rel);
}

Tracer* Tracer::active() noexcept {
  return g_tracer.load(std::memory_order_acquire);
}

std::vector<TraceEvent> Tracer::collect() const {
  std::vector<TraceEvent> out;
  Registry& reg = registry();
  std::lock_guard lock(reg.mutex);
  for (const auto& b : reg.buffers) {
    for (const EventRecord& r : b->ring.snapshot()) {
      if (r.name == nullptr || r.t_begin_ns < start_ns_) continue;
      out.push_back(TraceEvent{b->tid, r});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.rec.t_begin_ns != b.rec.t_begin_ns) {
                return a.rec.t_begin_ns < b.rec.t_begin_ns;
              }
              return a.tid < b.tid;
            });
  return out;
}

std::uint64_t Tracer::dropped() const {
  Registry& reg = registry();
  std::lock_guard lock(reg.mutex);
  std::uint64_t drops = 0;
  for (const auto& b : reg.buffers) drops += b->ring.dropped();
  return drops > dropped_baseline_ ? drops - dropped_baseline_ : 0;
}

TracingScope::TracingScope(Tracer& t) noexcept
    : previous_(g_tracer.exchange(&t, std::memory_order_acq_rel)) {}

TracingScope::~TracingScope() {
  g_tracer.store(previous_, std::memory_order_release);
}

std::uint64_t total_dropped_events() {
  Registry& reg = registry();
  std::lock_guard lock(reg.mutex);
  std::uint64_t drops = 0;
  for (const auto& b : reg.buffers) drops += b->ring.dropped();
  return drops;
}

void instant(const char* name, const char* category) noexcept {
  if (name == nullptr || Tracer::active() == nullptr) return;
  EventRecord r;
  r.name = name;
  r.category = category;
  r.kind = EventKind::kInstant;
  r.rank = t_rank;
  r.t_begin_ns = r.t_end_ns = now_ns();
  detail::this_thread_buffer()->ring.push(r);
}

void counter(const char* name, double value) noexcept {
  if (name == nullptr || Tracer::active() == nullptr) return;
  EventRecord r;
  r.name = name;
  r.category = "counter";
  r.kind = EventKind::kCounter;
  r.rank = t_rank;
  r.t_begin_ns = r.t_end_ns = now_ns();
  r.value = value;
  detail::this_thread_buffer()->ring.push(r);
}

}  // namespace capow::telemetry
