// Periodic RAPL sampling time-aligned with the span tracer.
//
// The paper's power figures are produced by a monitor loop that reads
// the RAPL counters while the algorithm runs. PowerSampler is that loop
// as a background thread: every `interval` it reads the PAPI-style
// EventSet (package + PP0), converts the energy delta to average watts
// over the elapsed slice, stores the sample, and — when a telemetry
// tracer is active — emits counter events on the same monotonic clock
// the spans use. Opening the resulting Chrome trace shows the power
// tracks directly above the spans that caused them.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <mutex>
#include <thread>
#include <vector>

#include "capow/rapl/msr.hpp"

namespace capow::telemetry {

class PowerSampler {
 public:
  struct Options {
    /// Sampling period. Leaving the default (500 µs) lets the
    /// CAPOW_POWER_PERIOD_US environment variable override it; an
    /// explicit non-default value always wins. Either way the resolved
    /// period is clamped to [kMinPeriod, kMaxPeriod] — see period().
    std::chrono::microseconds interval{500};
    /// Counter-track names for the tracer-aligned samples.
    const char* package_counter = "package_w";
    const char* pp0_counter = "pp0_w";
  };

  /// One timestamped reading (seconds since start()).
  struct Sample {
    double t_seconds = 0.0;
    double package_w = 0.0;
    double pp0_w = 0.0;
  };

  /// Observed inter-sample gap statistics of the last (or current)
  /// sampling session. The scheduler never honours the period exactly;
  /// the profiler uses max_seconds as its attribution error bar (a span
  /// edge can be misattributed by at most one real sample gap).
  struct JitterStats {
    std::size_t intervals = 0;
    double min_seconds = 0.0;
    double mean_seconds = 0.0;
    double max_seconds = 0.0;
  };

  static constexpr std::chrono::microseconds kDefaultPeriod{500};
  static constexpr std::chrono::microseconds kMinPeriod{50};
  static constexpr std::chrono::microseconds kMaxPeriod{1'000'000};

  /// Applies the CAPOW_POWER_PERIOD_US override (only when `requested`
  /// is the default) and clamps to [kMinPeriod, kMaxPeriod]. A value
  /// that does not parse as a positive integer is ignored.
  static std::chrono::microseconds resolve_period(
      std::chrono::microseconds requested) noexcept;

  /// Binds to `dev`; does not start sampling. The device must outlive
  /// the sampler.
  explicit PowerSampler(const rapl::SimulatedMsrDevice& dev)
      : PowerSampler(dev, Options{}) {}
  PowerSampler(const rapl::SimulatedMsrDevice& dev, Options opts);

  /// Stops the sampling thread if still running.
  ~PowerSampler();

  PowerSampler(const PowerSampler&) = delete;
  PowerSampler& operator=(const PowerSampler&) = delete;

  /// Launches the background monitor. Throws std::logic_error if
  /// already running.
  void start();

  /// Joins the monitor thread; samples() stays readable afterwards.
  void stop();

  bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }

  /// Snapshot of the samples captured so far.
  std::vector<Sample> samples() const;

  /// The resolved sampling period this instance polls at (after the
  /// environment override and clamping).
  std::chrono::microseconds period() const noexcept { return period_; }

  /// Inter-sample gap statistics for the samples captured so far
  /// (reset by start()).
  JitterStats jitter() const;

 private:
  void loop();

  const rapl::SimulatedMsrDevice* dev_;
  Options opts_;
  std::chrono::microseconds period_;
  std::thread thread_;
  mutable std::mutex mutex_;
  std::vector<Sample> samples_;
  std::size_t gap_count_ = 0;
  double gap_min_s_ = 0.0;
  double gap_max_s_ = 0.0;
  double gap_sum_s_ = 0.0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
};

}  // namespace capow::telemetry
