// Periodic RAPL sampling time-aligned with the span tracer.
//
// The paper's power figures are produced by a monitor loop that reads
// the RAPL counters while the algorithm runs. PowerSampler is that loop
// as a background thread: every `interval` it reads the PAPI-style
// EventSet (package + PP0), converts the energy delta to average watts
// over the elapsed slice, stores the sample, and — when a telemetry
// tracer is active — emits counter events on the same monotonic clock
// the spans use. Opening the resulting Chrome trace shows the power
// tracks directly above the spans that caused them.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <mutex>
#include <thread>
#include <vector>

#include "capow/rapl/msr.hpp"

namespace capow::telemetry {

class PowerSampler {
 public:
  struct Options {
    std::chrono::microseconds interval{500};
    /// Counter-track names for the tracer-aligned samples.
    const char* package_counter = "package_w";
    const char* pp0_counter = "pp0_w";
  };

  /// One timestamped reading (seconds since start()).
  struct Sample {
    double t_seconds = 0.0;
    double package_w = 0.0;
    double pp0_w = 0.0;
  };

  /// Binds to `dev`; does not start sampling. The device must outlive
  /// the sampler.
  explicit PowerSampler(const rapl::SimulatedMsrDevice& dev)
      : PowerSampler(dev, Options{}) {}
  PowerSampler(const rapl::SimulatedMsrDevice& dev, Options opts);

  /// Stops the sampling thread if still running.
  ~PowerSampler();

  PowerSampler(const PowerSampler&) = delete;
  PowerSampler& operator=(const PowerSampler&) = delete;

  /// Launches the background monitor. Throws std::logic_error if
  /// already running.
  void start();

  /// Joins the monitor thread; samples() stays readable afterwards.
  void stop();

  bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }

  /// Snapshot of the samples captured so far.
  std::vector<Sample> samples() const;

 private:
  void loop();

  const rapl::SimulatedMsrDevice* dev_;
  Options opts_;
  std::thread thread_;
  mutable std::mutex mutex_;
  std::vector<Sample> samples_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
};

}  // namespace capow::telemetry
