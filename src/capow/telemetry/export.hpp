// Exporters: trace and metrics data in formats other tools ingest.
//
//   * ChromeTraceWriter — Chrome trace-event JSON ("traceEvents" array of
//     X/i/C/M records, microsecond timestamps), loadable in Perfetto
//     (ui.perfetto.dev) and chrome://tracing.
//   * MetricsRegistry   — Prometheus text exposition (# HELP / # TYPE /
//     name{labels} value).
//   * JsonObject        — one-line JSON object builder for JSONL
//     structured run records.
//
// Everything here is plain buffered serialization — no dependency on the
// tracer, so the harness can export *simulated* timelines (the paper's
// Figs 4-6 power traces) through the same writers the live span tracer
// uses.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "capow/telemetry/tracer.hpp"

namespace capow::telemetry {

/// JSON string-body escaping (quotes, backslash, control chars).
std::string json_escape(std::string_view s);

/// Builder for one flat JSON object, emitted as a single line (JSONL).
class JsonObject {
 public:
  JsonObject& field(std::string_view key, std::string_view value);
  JsonObject& field(std::string_view key, const char* value);
  JsonObject& field(std::string_view key, double value);
  JsonObject& field(std::string_view key, std::int64_t value);
  JsonObject& field(std::string_view key, std::uint64_t value);
  JsonObject& field(std::string_view key, bool value);
  /// Pre-serialized JSON value (arrays, nested objects).
  JsonObject& raw(std::string_view key, std::string_view json);

  /// "{...}" — no trailing newline.
  std::string str() const;

 private:
  std::string& key(std::string_view k);
  std::string body_;
};

/// Accumulates Chrome trace events and writes the JSON object format.
class ChromeTraceWriter {
 public:
  using Args = std::vector<std::pair<std::string, double>>;

  /// Metadata: names the process / thread rows in the UI.
  void set_process_name(int pid, std::string name);
  void set_thread_name(int pid, int tid, std::string name);

  /// Complete ('X') duration event. Timestamps in microseconds.
  void add_complete(int pid, int tid, std::string name, std::string cat,
                    double ts_us, double dur_us, Args args = {});

  /// Instant ('i') point event.
  void add_instant(int pid, int tid, std::string name, std::string cat,
                   double ts_us);

  /// Flow events: a directed arrow between two lanes, matched by `id`.
  /// start ('s') anchors at the producing span (a send), finish ('f',
  /// binding point "enclosing slice") at the consuming one (the matched
  /// recv) — Perfetto draws the arrow across rank lanes.
  void add_flow_start(int pid, int tid, std::string name, std::string cat,
                      double ts_us, std::uint64_t id);
  void add_flow_finish(int pid, int tid, std::string name, std::string cat,
                       double ts_us, std::uint64_t id);

  /// Counter ('C') sample: each series becomes a stacked track value.
  void add_counter(int pid, std::string name, double ts_us, Args series);

  /// Converts collected tracer events (live spans/instants/counters).
  /// Timestamps are rebased to `base_ns` (use Tracer::start_ns()).
  void add_events(const std::vector<TraceEvent>& events, int pid,
                  std::uint64_t base_ns);

  std::size_t event_count() const noexcept { return events_.size(); }

  /// Writes {"traceEvents": [...], "displayTimeUnit": "ms"}.
  void write(std::ostream& os) const;
  std::string str() const;

 private:
  std::vector<std::string> events_;  // pre-serialized objects
};

/// Prometheus-style text metrics: families in registration order, one
/// sample per unique label set (later set() calls overwrite).
class MetricsRegistry {
 public:
  using Labels = std::vector<std::pair<std::string, std::string>>;

  /// Declares (or re-opens) a family. `type` is "gauge" or "counter".
  MetricsRegistry& family(std::string name, std::string help,
                          std::string type = "gauge");

  /// Sets a sample in the most recently declared family.
  MetricsRegistry& sample(const Labels& labels, double value);

  /// Convenience: declare-and-set a single-sample family.
  MetricsRegistry& set(std::string name, std::string help,
                       const Labels& labels, double value,
                       std::string type = "gauge");

  /// Full text exposition.
  std::string to_text() const;
  void write(std::ostream& os) const;

 private:
  struct Family {
    std::string name;
    std::string help;
    std::string type;
    std::vector<std::pair<std::string, double>> samples;  // key -> value
  };
  static std::string label_key(const Labels& labels);

  std::vector<Family> families_;
};

}  // namespace capow::telemetry
