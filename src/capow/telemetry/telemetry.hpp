// Instrumentation macro layer — the only telemetry header kernels and
// runtimes include.
//
// Call sites write
//
//   CAPOW_TSPAN("caps.bfs", "caps");                       // RAII span
//   CAPOW_TSPAN_ARGS2("strassen.recurse", "strassen",
//                     "depth", depth, "n", n);             // + two int64 args
//   CAPOW_TINSTANT("task.enqueue", "tasking");             // point event
//   CAPOW_TCOUNTER("package_w", watts);                    // counter sample
//
// With CAPOW_TELEMETRY_ENABLED=1 (the default; CMake option
// CAPOW_TELEMETRY) these expand to the tracer primitives: one relaxed
// atomic load when no tracer is installed, a lock-free ring push when
// one is. With CAPOW_TELEMETRY_ENABLED=0 they expand to nothing at all
// — no argument evaluation, no clock reads, no code — which is the
// zero-cost guarantee the CI "telemetry-off" build leg holds us to.
//
// The tracer/exporter *classes* stay compiled either way (the simulated
// timeline exporters in harness/ use them independently of runtime
// instrumentation); only the call-site macros are removed.
#pragma once

#ifndef CAPOW_TELEMETRY_ENABLED
#define CAPOW_TELEMETRY_ENABLED 1
#endif

#if CAPOW_TELEMETRY_ENABLED

#include <cstdint>

#include "capow/telemetry/tracer.hpp"

#define CAPOW_TELEMETRY_CAT2(a, b) a##b
#define CAPOW_TELEMETRY_CAT(a, b) CAPOW_TELEMETRY_CAT2(a, b)

#define CAPOW_TSPAN(name, category)                          \
  ::capow::telemetry::SpanScope CAPOW_TELEMETRY_CAT(         \
      capow_tspan_, __LINE__)(name, category)

#define CAPOW_TSPAN_ARGS1(name, category, k0, v0)            \
  ::capow::telemetry::SpanScope CAPOW_TELEMETRY_CAT(         \
      capow_tspan_, __LINE__)(name, category, k0,            \
                              static_cast<std::int64_t>(v0))

#define CAPOW_TSPAN_ARGS2(name, category, k0, v0, k1, v1)    \
  ::capow::telemetry::SpanScope CAPOW_TELEMETRY_CAT(         \
      capow_tspan_, __LINE__)(name, category, k0,            \
                              static_cast<std::int64_t>(v0), \
                              k1, static_cast<std::int64_t>(v1))

#define CAPOW_TSPAN_ARGS3(name, category, k0, v0, k1, v1, k2, v2) \
  ::capow::telemetry::SpanScope CAPOW_TELEMETRY_CAT(              \
      capow_tspan_, __LINE__)(name, category, k0,                 \
                              static_cast<std::int64_t>(v0),      \
                              k1, static_cast<std::int64_t>(v1),  \
                              k2, static_cast<std::int64_t>(v2))

#define CAPOW_TINSTANT(name, category) \
  ::capow::telemetry::instant(name, category)

#define CAPOW_TCOUNTER(name, value) \
  ::capow::telemetry::counter(name, value)

#else  // CAPOW_TELEMETRY_ENABLED == 0

#define CAPOW_TSPAN(name, category) \
  do {                              \
  } while (false)
#define CAPOW_TSPAN_ARGS1(name, category, k0, v0) \
  do {                                            \
  } while (false)
#define CAPOW_TSPAN_ARGS2(name, category, k0, v0, k1, v1) \
  do {                                                    \
  } while (false)
#define CAPOW_TSPAN_ARGS3(name, category, k0, v0, k1, v1, k2, v2) \
  do {                                                            \
  } while (false)
#define CAPOW_TINSTANT(name, category) \
  do {                                 \
  } while (false)
#define CAPOW_TCOUNTER(name, value) \
  do {                              \
  } while (false)

#endif  // CAPOW_TELEMETRY_ENABLED
