// The span tracer: who did what, when, on which thread.
//
// The trace::Recorder answers "how much" (flops, bytes) per thread and
// phase; this module answers "when" — it timestamps the task runtime,
// the three matmul kernels, and the mini-MPI so the paper's power
// timelines (Figs 4-6) can be read against what the algorithm was doing
// at each instant. Design constraints, in order:
//
//   1. near-zero cost when no tracer is installed (one relaxed atomic
//      load per call site),
//   2. no locks or allocation on the hot path when tracing (per-thread
//      SPSC rings, string-literal / interned names, two clock reads per
//      span),
//   3. compile-time removable: call sites use the CAPOW_T* macros from
//      telemetry.hpp, which vanish under CAPOW_TELEMETRY_ENABLED=0.
//
// Thread buffers live in a process-global registry that is never torn
// down: a worker racing a Tracer uninstall can at worst write one stray
// record into a still-live ring, never touch freed memory. A Tracer is
// a *session* over that registry — it filters collected events to its
// own time window.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "capow/telemetry/clock.hpp"
#include "capow/telemetry/ring.hpp"

namespace capow::telemetry {

namespace detail {
/// One thread's ring plus its stable small id (0 = first registered,
/// usually the main thread). Owned by the process-global registry.
struct ThreadBuffer {
  EventRing ring;
  std::uint64_t tid = 0;
  explicit ThreadBuffer(std::size_t capacity, std::uint64_t id)
      : ring(capacity), tid(id) {}
};

/// The calling thread's buffer, registering it on first use.
ThreadBuffer* this_thread_buffer();
}  // namespace detail

/// A collected event: an EventRecord plus the thread it came from.
struct TraceEvent {
  std::uint64_t tid = 0;
  EventRecord rec;
};

/// Copies `s` into process-lifetime storage and returns a stable pointer
/// (same pointer for equal strings). Use for dynamic span names; string
/// literals can be passed to SpanScope directly.
const char* intern(std::string_view s);

/// Tags the calling thread with a distributed rank id; every event the
/// thread subsequently records carries it (EventRecord::rank), which is
/// how the Chrome exporter builds one lane per rank. dist::World sets
/// this on each rank thread and restores -1 ("no rank") at rank exit.
void set_thread_rank(std::int32_t rank) noexcept;

/// The calling thread's rank tag (-1 when unset).
std::int32_t thread_rank() noexcept;

/// One tracing session. Construct, install with TracingScope, run the
/// instrumented code, then collect(). Sessions are cheap; the expensive
/// state (rings) is process-global and reused.
class Tracer {
 public:
  struct Options {
    /// Ring capacity for thread buffers *created during this session*
    /// (buffers registered earlier keep their size).
    std::size_t ring_capacity = 8192;
  };

  Tracer() : Tracer(Options{}) {}
  explicit Tracer(Options opts);
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// The installed tracer, or nullptr. Call sites gate on this.
  static Tracer* active() noexcept;

  /// Session start timestamp; collect() keeps events at or after it.
  std::uint64_t start_ns() const noexcept { return start_ns_; }

  /// Merges every thread's retained events that fall inside this
  /// session, sorted by begin time (ties by tid). Call after the
  /// instrumented work has quiesced (joins/waits completed).
  std::vector<TraceEvent> collect() const;

  /// Ring-wraparound shed across all thread buffers since this session
  /// started (advisory: coarse per-buffer accounting).
  std::uint64_t dropped() const;

  const Options& options() const noexcept { return opts_; }

 private:
  friend class TracingScope;
  Options opts_;
  std::uint64_t start_ns_ = 0;
  std::uint64_t dropped_baseline_ = 0;
};

/// RAII install/uninstall of the process-wide active tracer (mirrors
/// trace::RecordingScope). Nesting restores the previous tracer.
class TracingScope {
 public:
  explicit TracingScope(Tracer& t) noexcept;
  ~TracingScope();
  TracingScope(const TracingScope&) = delete;
  TracingScope& operator=(const TracingScope&) = delete;

 private:
  Tracer* previous_;
};

/// RAII span: captures t_begin at construction and pushes one closed
/// kSpan record at destruction. Inactive (and nearly free) when no
/// tracer is installed or `name` is nullptr.
class SpanScope {
 public:
  SpanScope(const char* name, const char* category) noexcept {
    open(name, category);
  }
  SpanScope(const char* name, const char* category, const char* k0,
            std::int64_t v0) noexcept {
    open(name, category);
    rec_.arg_name[0] = k0;
    rec_.arg[0] = v0;
  }
  SpanScope(const char* name, const char* category, const char* k0,
            std::int64_t v0, const char* k1, std::int64_t v1) noexcept {
    open(name, category);
    rec_.arg_name[0] = k0;
    rec_.arg[0] = v0;
    rec_.arg_name[1] = k1;
    rec_.arg[1] = v1;
  }
  SpanScope(const char* name, const char* category, const char* k0,
            std::int64_t v0, const char* k1, std::int64_t v1,
            const char* k2, std::int64_t v2) noexcept {
    open(name, category);
    rec_.arg_name[0] = k0;
    rec_.arg[0] = v0;
    rec_.arg_name[1] = k1;
    rec_.arg[1] = v1;
    rec_.arg_name[2] = k2;
    rec_.arg[2] = v2;
  }
  ~SpanScope() {
    if (buf_ != nullptr) {
      rec_.t_end_ns = now_ns();
      buf_->ring.push(rec_);
    }
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  bool active() const noexcept { return buf_ != nullptr; }

  /// Fills arg slot `i` after construction — for values only known once
  /// the spanned operation completes (e.g. the sequence number of the
  /// message a recv matched). No-op on inactive spans or bad slots.
  void set_arg(int i, const char* arg_name, std::int64_t value) noexcept {
    if (buf_ == nullptr || i < 0 || i >= EventRecord::kMaxArgs) return;
    rec_.arg_name[i] = arg_name;
    rec_.arg[i] = value;
  }

 private:
  void open(const char* name, const char* category) noexcept {
    if (name == nullptr || Tracer::active() == nullptr) return;
    buf_ = detail::this_thread_buffer();
    rec_.name = name;
    rec_.category = category;
    rec_.kind = EventKind::kSpan;
    rec_.rank = thread_rank();
    rec_.t_begin_ns = now_ns();
  }

  EventRecord rec_{};
  detail::ThreadBuffer* buf_ = nullptr;
};

/// Process-lifetime count of ring records lost to wraparound, summed
/// across every registered thread buffer (monotonic; independent of any
/// session's baseline). Surfaced as capow_trace_dropped_events_total in
/// the Prometheus export and as a capow-report warning banner, so
/// truncated traces are never silently presented as complete.
std::uint64_t total_dropped_events();

/// Point event on the calling thread (no-op without an active tracer).
void instant(const char* name, const char* category) noexcept;

/// Sampled numeric value (rendered as a counter track by the Chrome
/// exporter). No-op without an active tracer.
void counter(const char* name, double value) noexcept;

}  // namespace capow::telemetry
