// Per-thread event ring buffer: the storage primitive under the tracer.
//
// Single-producer (the owning thread) / single-consumer (the collector)
// with no locks on the producer path: the writer stores the record and
// publishes a monotonically increasing head with release ordering; the
// reader walks [head - retained, head) with acquire ordering. When the
// ring wraps, the *oldest* records are overwritten — a tracing session
// keeps the most recent window and reports how much it shed, which is
// the right bias for "what was the system doing when X happened".
//
// Snapshot consistency: reading while the owner is actively pushing can
// observe a torn in-flight slot, so collectors snapshot quiescent
// threads (the tracer collects after joins/waits; tests follow suit).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace capow::telemetry {

/// What one ring slot records.
enum class EventKind : std::uint8_t {
  kSpan,     ///< a closed duration: [t_begin_ns, t_end_ns]
  kInstant,  ///< a point event (t_end_ns == t_begin_ns)
  kCounter,  ///< a sampled numeric value at t_begin_ns
};

/// One fixed-size event record. Names are stable `const char*` (string
/// literals or tracer-interned strings) so pushing never allocates.
struct EventRecord {
  static constexpr int kMaxArgs = 3;

  const char* name = nullptr;
  const char* category = nullptr;
  std::uint64_t t_begin_ns = 0;
  std::uint64_t t_end_ns = 0;
  EventKind kind = EventKind::kSpan;
  const char* arg_name[kMaxArgs] = {nullptr, nullptr, nullptr};
  std::int64_t arg[kMaxArgs] = {0, 0, 0};
  double value = 0.0;  ///< counter payload
  /// Distributed rank of the emitting thread (set via
  /// telemetry::set_thread_rank by dist::World), or -1 outside any rank.
  /// Exporters use it to group events into one lane per rank.
  std::int32_t rank = -1;
};

/// Fixed-capacity overwrite-oldest ring of EventRecords.
class EventRing {
 public:
  /// Capacity is rounded up to a power of two (minimum 8).
  explicit EventRing(std::size_t capacity = 8192) {
    std::size_t c = 8;
    while (c < capacity) c <<= 1;
    slots_.resize(c);
    mask_ = c - 1;
  }

  std::size_t capacity() const noexcept { return slots_.size(); }

  /// Producer side; owning thread only.
  void push(const EventRecord& r) noexcept {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    slots_[h & mask_] = r;
    head_.store(h + 1, std::memory_order_release);
  }

  /// Total records ever pushed.
  std::uint64_t pushed() const noexcept {
    return head_.load(std::memory_order_acquire);
  }

  /// Records lost to wraparound (pushed - retained).
  std::uint64_t dropped() const noexcept {
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    return h > slots_.size() ? h - slots_.size() : 0;
  }

  /// Consumer side: the retained window, oldest first. Safe when the
  /// owning thread is quiescent (see file comment).
  std::vector<EventRecord> snapshot() const {
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    const std::uint64_t n =
        h < slots_.size() ? h : static_cast<std::uint64_t>(slots_.size());
    std::vector<EventRecord> out;
    out.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = h - n; i < h; ++i) {
      out.push_back(slots_[i & mask_]);
    }
    return out;
  }

 private:
  std::vector<EventRecord> slots_;
  std::size_t mask_ = 0;
  std::atomic<std::uint64_t> head_{0};
};

}  // namespace capow::telemetry
