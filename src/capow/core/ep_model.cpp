#include "capow/core/ep_model.hpp"

#include <algorithm>
#include <stdexcept>

namespace capow::core {

double energy_performance(double eavg_watts, double t_seconds) {
  if (t_seconds <= 0.0) {
    throw std::invalid_argument("energy_performance: time must be > 0");
  }
  if (eavg_watts < 0.0) {
    throw std::invalid_argument("energy_performance: negative power");
  }
  return eavg_watts / t_seconds;
}

double plane_sum(std::span<const double> plane_watts) {
  double sum = 0.0;
  for (double w : plane_watts) {
    if (w < 0.0) {
      throw std::invalid_argument("plane_sum: negative plane reading");
    }
    sum += w;
  }
  return sum;
}

double energy_performance_total(const MixedMeasurement& m) {
  double max_power = 0.0;
  double max_time = 0.0;
  for (const auto& u : m.parallel_units) {
    max_power = std::max(max_power, u.power());
    max_time = std::max(max_time, u.t_seconds);
  }
  const double power = m.sequential.power() + max_power;
  const double time = m.sequential.t_seconds + max_time;
  return energy_performance(power, time);
}

double scaling_ratio(double ep_p, double ep_1) {
  if (ep_1 <= 0.0) {
    throw std::invalid_argument("scaling_ratio: EP_1 must be > 0");
  }
  return ep_p / ep_1;
}

std::vector<ScalingPoint> scaling_series(
    std::span<const std::pair<unsigned, double>> ep_by_parallelism) {
  double ep1 = 0.0;
  for (const auto& [p, ep] : ep_by_parallelism) {
    if (ep <= 0.0) {
      throw std::invalid_argument("scaling_series: EP values must be > 0");
    }
    if (p == 1) ep1 = ep;
  }
  if (ep1 <= 0.0) {
    throw std::invalid_argument("scaling_series: missing p == 1 sample");
  }
  std::vector<ScalingPoint> out;
  out.reserve(ep_by_parallelism.size());
  for (const auto& [p, ep] : ep_by_parallelism) {
    out.push_back(ScalingPoint{p, ep, scaling_ratio(ep, ep1)});
  }
  std::sort(out.begin(), out.end(),
            [](const ScalingPoint& a, const ScalingPoint& b) {
              return a.parallelism < b.parallelism;
            });
  return out;
}

ScalingClass classify_scaling(std::span<const ScalingPoint> series,
                              double rtol) {
  bool any_above = false;
  bool any_below = false;
  for (const auto& pt : series) {
    if (pt.parallelism <= 1) continue;
    const double threshold = static_cast<double>(pt.parallelism);
    if (pt.s > threshold * (1.0 + rtol)) {
      any_above = true;
    } else {
      any_below = true;
    }
  }
  if (any_above && any_below) return ScalingClass::kMixed;
  if (any_above) return ScalingClass::kSuperlinear;
  return ScalingClass::kIdeal;
}

std::string to_string(ScalingClass c) {
  switch (c) {
    case ScalingClass::kIdeal:
      return "ideal";
    case ScalingClass::kSuperlinear:
      return "superlinear";
    case ScalingClass::kMixed:
      return "mixed";
  }
  return "?";
}

}  // namespace capow::core
