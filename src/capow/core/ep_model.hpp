// capow::core — the Energy Performance scaling model (paper Section III).
//
// These are the paper's contribution: a small algebra relating average
// power to parallel runtime so that *algorithms* can be ranked by how
// their power demand scales with parallelism.
//
//   Eq (1)  EP_p  = EAvg_p / T_p
//   Eq (2)  EP_t  = (EAvg_s + max_p(EAvg_p)) / (T_s + max_p(T_p))
//   Eq (3)  EAvg  = sum over power planes PPL_f
//   Eq (4)  Eq (2) with each EAvg term expanded per Eq (3)
//   Eq (5)  S     = EP_p / EP_1
//   Eq (6)  Eq (5) fully expanded
//
// Following the paper's own measurement methodology, EAvg is the
// time-averaged power (watts: RAPL energy delta / wall time), T is in
// seconds, so EP carries units of W/s — the paper's Table IV values are
// reproduced in exactly these units.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace capow::core {

/// Eq (1): EP_p = EAvg_p / T_p.
/// Throws std::invalid_argument for non-positive time or negative power.
double energy_performance(double eavg_watts, double t_seconds);

/// Eq (3): total average power as the sum over measured power planes.
/// Negative plane readings are rejected.
double plane_sum(std::span<const double> plane_watts);

/// Measurements of one parallel unit: per-plane average power and the
/// unit's runtime.
struct UnitMeasurement {
  std::vector<double> plane_watts;  ///< PPL_0 .. PPL_F readings
  double t_seconds = 0.0;

  double power() const { return plane_sum(plane_watts); }
};

/// A mixed sequential+parallel application measurement (the operands of
/// Eq (2)/(4)). The sequential component may be absent (t_seconds == 0
/// and no plane readings), reducing Eq (2) to Eq (1).
struct MixedMeasurement {
  UnitMeasurement sequential;
  std::vector<UnitMeasurement> parallel_units;
};

/// Eq (2)/(4): EP_t = (EAvg_s + max(EAvg_p)) / (T_s + max(T_p)).
/// Requires at least one parallel unit or a nonzero sequential part.
double energy_performance_total(const MixedMeasurement& m);

/// Eq (5): S = EP_p / EP_1. Throws when ep_1 is not positive.
double scaling_ratio(double ep_p, double ep_1);

/// One point of an energy-performance scaling curve.
struct ScalingPoint {
  unsigned parallelism = 1;  ///< degree of parallelism p
  double ep = 0.0;           ///< EP_p
  double s = 0.0;            ///< S = EP_p / EP_1
};

/// Builds the Eq (5) series from (p, EP_p) samples; the p == 1 entry is
/// the base. Samples are sorted by p. Throws when no p == 1 sample
/// exists or any EP is non-positive.
std::vector<ScalingPoint> scaling_series(
    std::span<const std::pair<unsigned, double>> ep_by_parallelism);

/// Classification against the linear threshold of Fig 1: S(p) <= p is
/// ideal ("power grows no faster than performance"), S(p) > p is
/// superlinear (power must outgrow the speedup).
enum class ScalingClass {
  kIdeal,        ///< every point at or below the linear threshold
  kSuperlinear,  ///< every point (p > 1) above the threshold
  kMixed,        ///< some points above, some below
};

/// Classifies a scaling series with relative tolerance `rtol` around the
/// linear threshold (points within tolerance count as ideal).
ScalingClass classify_scaling(std::span<const ScalingPoint> series,
                              double rtol = 0.02);

/// Human-readable name for a ScalingClass.
std::string to_string(ScalingClass c);

}  // namespace capow::core
