// The Strassen/blocked crossover point (paper Eq 9, after Wadleigh &
// Crawford): the square dimension n at which a Strassen step breaks even
// with the classical multiply on a platform that computes at y MFLOP/s
// and moves data at z MB/s:
//
//     15 * 32 * (n/2)^2 bytes / (z MB/s)  =  2 * (n/2)^3 flop / (y MFLOP/s)
//  =>  n = 480 * y / z
//
// The paper's platform has a high compute-to-memory ratio, putting the
// crossover beyond its 4 GB memory capacity — which is why its Table II
// shows Strassen slower at every measured size. The eq9 bench sweeps
// y and z to chart where the crossover falls for other balances.
#pragma once

#include "capow/machine/machine.hpp"

namespace capow::core {

/// Eq (9): n = 480 * y / z with y in MFLOP/s and z in MB/s.
/// Throws std::invalid_argument for non-positive rates.
double strassen_crossover_dimension(double y_mflops, double z_mbs);

/// Crossover for a machine model: y is the peak rate scaled by the
/// tuned-GEMM kernel efficiency, z the memory bandwidth.
double strassen_crossover_dimension(const machine::MachineSpec& spec,
                                    double gemm_efficiency);

/// Whether the crossover problem (three n x n double matrices) even
/// fits in the machine's memory — the paper's reason for never reaching
/// it experimentally.
bool crossover_fits_in_memory(const machine::MachineSpec& spec,
                              double crossover_n);

}  // namespace capow::core
