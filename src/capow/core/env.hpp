// Shared numeric parsing for environment variables and CLI flags.
//
// Every CAPOW_* numeric knob (CAPOW_POWER_PERIOD_US, the capowd
// CAPOW_SERVE_* family) and every numeric tool flag used to hand-roll
// its own strtol call, each with a different idea of what "12abc" or an
// out-of-range value means. This header is the one implementation they
// all share: parsing is strict (the whole token must be consumed — no
// trailing junk, no empty strings), range violations produce an error
// that names the variable and the accepted range, and callers choose
// between the throwing interface (config knobs, where a typo must stop
// the run) and the lenient one (default-only overrides documented to be
// ignored when malformed, e.g. PowerSampler's noexcept period
// resolution).
//
// Header-only and dependency-free so any module — telemetry sits below
// core in the build graph — can include it without link-order changes.
#pragma once

#include <cstdlib>
#include <optional>
#include <stdexcept>
#include <string>

namespace capow::core {

/// Strictly parses `text` as a base-10 signed integer: the entire token
/// must be digits (with optional leading '-'); "12abc", "", "1.5" all
/// throw std::invalid_argument naming `what` (a variable or flag name).
inline long long parse_integer(const std::string& what,
                               const std::string& text) {
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (text.empty() || end != text.c_str() + text.size() || errno == ERANGE) {
    throw std::invalid_argument(what + ": expected an integer, got '" +
                                text + "'");
  }
  return v;
}

/// parse_integer() plus an inclusive range check; the error names the
/// variable and the accepted range.
inline long long parse_integer_in(const std::string& what,
                                  const std::string& text, long long lo,
                                  long long hi) {
  const long long v = parse_integer(what, text);
  if (v < lo || v > hi) {
    throw std::invalid_argument(what + ": value " + text +
                                " out of range [" + std::to_string(lo) +
                                ", " + std::to_string(hi) + "]");
  }
  return v;
}

/// Strictly parses `text` as a finite double (whole token consumed).
inline double parse_double(const std::string& what,
                           const std::string& text) {
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(text.c_str(), &end);
  if (text.empty() || end != text.c_str() + text.size() || errno == ERANGE) {
    throw std::invalid_argument(what + ": expected a number, got '" + text +
                                "'");
  }
  return v;
}

/// parse_double() plus an inclusive range check naming the variable.
inline double parse_double_in(const std::string& what,
                              const std::string& text, double lo,
                              double hi) {
  const double v = parse_double(what, text);
  if (!(v >= lo && v <= hi)) {
    throw std::invalid_argument(what + ": value " + text +
                                " out of range [" + std::to_string(lo) +
                                ", " + std::to_string(hi) + "]");
  }
  return v;
}

/// Environment lookup: nullopt when `name` is unset or empty (an empty
/// export is "not configured", matching FaultPlan::from_env()).
inline std::optional<std::string> env_string(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return std::nullopt;
  return std::string(v);
}

/// Throwing env knob: unset/empty returns nullopt; anything else must
/// parse strictly and land in [lo, hi] or the error names the variable.
inline std::optional<long long> env_integer_in(const char* name,
                                               long long lo, long long hi) {
  const auto text = env_string(name);
  if (!text) return std::nullopt;
  return parse_integer_in(name, *text, lo, hi);
}

/// Throwing env knob, double-valued.
inline std::optional<double> env_double_in(const char* name, double lo,
                                           double hi) {
  const auto text = env_string(name);
  if (!text) return std::nullopt;
  return parse_double_in(name, *text, lo, hi);
}

/// Lenient env knob for noexcept default-only overrides: same strict
/// grammar, but a malformed or out-of-range value yields nullopt (the
/// documented ignore-and-use-default behaviour) instead of throwing.
inline std::optional<long long> env_integer_lenient(const char* name,
                                                    long long lo,
                                                    long long hi) noexcept {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return std::nullopt;
  char* end = nullptr;
  errno = 0;
  const long long parsed = std::strtoll(v, &end, 10);
  if (end == v || *end != '\0' || errno == ERANGE) return std::nullopt;
  if (parsed < lo || parsed > hi) return std::nullopt;
  return parsed;
}

}  // namespace capow::core
