// Communication lower bounds (paper Eq 8 and the classical comparison).
//
// CAPS attains the Strassen communication lower bound
//
//   W = max( n^w0 / (P * M^(w0/2 - 1)),  n^2 / P^(2/w0) )
//
// with w0 = log2(7), P processing elements, and M words of fast/local
// memory per element (Ballard et al.). The classical counterpart has
// exponent 3 (2mn k / (P sqrt(M)) shape). The eq8 bench evaluates both
// against the measured traffic of our implementations.
#pragma once

#include <cstddef>

#include "capow/machine/machine.hpp"

namespace capow::core {

/// omega_0 = log2(7), the Strassen exponent.
double strassen_exponent() noexcept;

/// Eq (8): Strassen communication lower bound in *words*, for an n x n
/// problem on P elements with M words of fast memory each.
/// Throws std::invalid_argument for zero n, P, or M.
double caps_communication_bound_words(std::size_t n, unsigned p,
                                      double m_words);

/// Classical (cubic) matrix-multiply communication lower bound in words:
/// max(n^3 / (P * sqrt(M)), n^2 / P^(2/3)).
double classical_communication_bound_words(std::size_t n, unsigned p,
                                           double m_words);

/// Words of fast memory per processing element for a machine: the LLC
/// share of one core in doubles.
double fast_memory_words_per_core(const machine::MachineSpec& spec);

}  // namespace capow::core
