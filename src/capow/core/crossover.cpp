#include "capow/core/crossover.hpp"

#include <stdexcept>

namespace capow::core {

double strassen_crossover_dimension(double y_mflops, double z_mbs) {
  if (y_mflops <= 0.0 || z_mbs <= 0.0) {
    throw std::invalid_argument(
        "strassen_crossover_dimension: rates must be > 0");
  }
  return 480.0 * y_mflops / z_mbs;
}

double strassen_crossover_dimension(const machine::MachineSpec& spec,
                                    double gemm_efficiency) {
  if (gemm_efficiency <= 0.0 || gemm_efficiency > 1.0) {
    throw std::invalid_argument(
        "strassen_crossover_dimension: efficiency outside (0,1]");
  }
  const double y_mflops = spec.peak_flops() * gemm_efficiency / 1e6;
  const double z_mbs = spec.memory.bandwidth_bytes_per_s / 1e6;
  return strassen_crossover_dimension(y_mflops, z_mbs);
}

bool crossover_fits_in_memory(const machine::MachineSpec& spec,
                              double crossover_n) {
  const double bytes = 3.0 * crossover_n * crossover_n * sizeof(double);
  return bytes <= static_cast<double>(spec.memory.capacity_bytes);
}

}  // namespace capow::core
