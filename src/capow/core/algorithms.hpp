// The single registry of the paper's matmul algorithms (Section IV).
//
// Every layer that enumerates or names algorithms — the capow::matmul
// facade, the harness's ExperimentConfig matrix, the capow-report tables,
// the bench figure drivers, checkpoint parsing — pulls from this table,
// so adding an algorithm is a one-file change: append an AlgorithmInfo
// row here and give the facade a dispatch case.
#pragma once

#include <cstddef>
#include <span>
#include <string_view>

namespace capow::core {

/// The paper's three multiplication algorithms. Values are stable: they
/// index checkpoint files and JSONL exports written by earlier builds.
enum class AlgorithmId : int { kOpenBlas = 0, kStrassen = 1, kCaps = 2 };

/// One registry row.
struct AlgorithmInfo {
  AlgorithmId id{};
  const char* name = "";  ///< display name used in tables and exports
  const char* key = "";   ///< lowercase machine key (CLI flags, JSONL)
  const char* description = "";
};

/// All registered algorithms, in AlgorithmId order.
std::span<const AlgorithmInfo> algorithm_registry() noexcept;

/// Registry row for `id`; falls back to the OpenBLAS row for an
/// out-of-range id (callers treat the registry as total).
const AlgorithmInfo& algorithm_info(AlgorithmId id) noexcept;

/// Lookup by display name or machine key; null when unknown.
const AlgorithmInfo* find_algorithm(std::string_view name_or_key) noexcept;

/// Display name ("OpenBLAS", "Strassen", "CAPS").
const char* algorithm_name(AlgorithmId id) noexcept;

}  // namespace capow::core
