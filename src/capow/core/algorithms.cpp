#include "capow/core/algorithms.hpp"

namespace capow::core {

namespace {

constexpr AlgorithmInfo kAlgorithms[] = {
    {AlgorithmId::kOpenBlas, "OpenBLAS", "openblas",
     "Goto-style packed blocked DGEMM (the paper's tuned EP baseline)"},
    {AlgorithmId::kStrassen, "Strassen", "strassen",
     "task-parallel seven-product recursion (BOTS-derived, Section IV-B)"},
    {AlgorithmId::kCaps, "CAPS", "caps",
     "communication-avoiding BFS/DFS Strassen traversal (Section IV-C)"},
};

}  // namespace

std::span<const AlgorithmInfo> algorithm_registry() noexcept {
  return kAlgorithms;
}

const AlgorithmInfo& algorithm_info(AlgorithmId id) noexcept {
  for (const AlgorithmInfo& info : kAlgorithms) {
    if (info.id == id) return info;
  }
  return kAlgorithms[0];
}

const AlgorithmInfo* find_algorithm(std::string_view name_or_key) noexcept {
  for (const AlgorithmInfo& info : kAlgorithms) {
    if (name_or_key == info.name || name_or_key == info.key) return &info;
  }
  return nullptr;
}

const char* algorithm_name(AlgorithmId id) noexcept {
  return algorithm_info(id).name;
}

}  // namespace capow::core
