#include "capow/core/comm_bounds.hpp"

#include <cmath>
#include <stdexcept>

namespace capow::core {

double strassen_exponent() noexcept { return std::log2(7.0); }

namespace {

double bound_words(std::size_t n, unsigned p, double m_words,
                   double omega) {
  if (n == 0 || p == 0 || m_words <= 0.0) {
    throw std::invalid_argument(
        "communication bound: n, P, M must be positive");
  }
  const double nd = static_cast<double>(n);
  const double pd = static_cast<double>(p);
  const double memory_term =
      std::pow(nd, omega) / (pd * std::pow(m_words, omega / 2.0 - 1.0));
  const double bandwidth_term = nd * nd / std::pow(pd, 2.0 / omega);
  return std::max(memory_term, bandwidth_term);
}

}  // namespace

double caps_communication_bound_words(std::size_t n, unsigned p,
                                      double m_words) {
  return bound_words(n, p, m_words, strassen_exponent());
}

double classical_communication_bound_words(std::size_t n, unsigned p,
                                           double m_words) {
  return bound_words(n, p, m_words, 3.0);
}

double fast_memory_words_per_core(const machine::MachineSpec& spec) {
  const double llc = static_cast<double>(spec.llc_capacity_bytes());
  if (llc <= 0.0 || spec.core_count == 0) {
    throw std::invalid_argument(
        "fast_memory_words_per_core: machine has no cache");
  }
  return llc / spec.core_count / sizeof(double);
}

}  // namespace capow::core
